//! Numerically controlled oscillators and multi-tone synthesis.
//!
//! The CIB beamformer transmits a distinct carrier from every antenna; in
//! the complex-baseband simulation each carrier is a phase-continuous
//! complex tone at its frequency *offset* from the band centre. The
//! [`Oscillator`] here mirrors a software NCO: exact phase accumulation with
//! wrap-around, retunable mid-stream without phase jumps.

use crate::buffer::IqBuffer;
use crate::complex::Complex64;
use std::f64::consts::TAU;

/// A phase-continuous numerically controlled oscillator.
#[derive(Debug, Clone)]
pub struct Oscillator {
    freq_hz: f64,
    sample_rate: f64,
    phase: f64,
    phase_inc: f64,
}

impl Oscillator {
    /// Creates an oscillator at `freq_hz` (may be negative for a
    /// lower-sideband tone) sampled at `sample_rate`.
    ///
    /// # Panics
    /// Panics if `sample_rate` is not strictly positive.
    pub fn new(freq_hz: f64, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        Oscillator {
            freq_hz,
            sample_rate,
            phase: 0.0,
            phase_inc: TAU * freq_hz / sample_rate,
        }
    }

    /// Creates an oscillator with a given initial phase in radians.
    pub fn with_phase(freq_hz: f64, sample_rate: f64, phase: f64) -> Self {
        let mut osc = Self::new(freq_hz, sample_rate);
        osc.phase = phase.rem_euclid(TAU);
        osc
    }

    /// Current tuned frequency, Hz.
    #[inline]
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// Current accumulated phase, radians in `[0, 2π)`.
    #[inline]
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Retunes the oscillator without a phase discontinuity.
    pub fn retune(&mut self, freq_hz: f64) {
        self.freq_hz = freq_hz;
        self.phase_inc = TAU * freq_hz / self.sample_rate;
    }

    /// Produces the next sample `e^{jφ}` and advances the phase.
    #[inline]
    pub fn next_sample(&mut self) -> Complex64 {
        let s = Complex64::cis(self.phase);
        self.phase = (self.phase + self.phase_inc).rem_euclid(TAU);
        s
    }

    /// Fills `out` with consecutive samples.
    pub fn fill(&mut self, out: &mut [Complex64]) {
        for o in out {
            *o = self.next_sample();
        }
    }

    /// Generates `len` samples into a fresh [`IqBuffer`].
    pub fn generate(&mut self, len: usize) -> IqBuffer {
        let mut buf = IqBuffer::zeros(len, self.sample_rate);
        self.fill(buf.samples_mut());
        buf
    }

    /// Mixes (multiplies) an existing buffer with this oscillator in place,
    /// i.e. shifts its spectrum by the oscillator frequency.
    pub fn mix(&mut self, buf: &mut IqBuffer) {
        assert!(
            (buf.sample_rate() - self.sample_rate).abs() < 1e-9,
            "sample rate mismatch between oscillator and buffer"
        );
        for s in buf.samples_mut() {
            *s *= self.next_sample();
        }
    }
}

/// A bank of tones summed into one waveform: the analytic heart of CIB.
///
/// Each tone `i` contributes `a_i · e^{j(2π f_i t + β_i)}`. The paper's
/// Eq. 5 is exactly `MultiTone::sample` with unit amplitudes.
#[derive(Debug, Clone)]
pub struct MultiTone {
    tones: Vec<Tone>,
}

/// One component of a [`MultiTone`].
#[derive(Debug, Clone, Copy)]
pub struct Tone {
    /// Frequency in Hz (offset from band centre in baseband simulations).
    pub freq_hz: f64,
    /// Initial phase β in radians.
    pub phase: f64,
    /// Amplitude (linear).
    pub amplitude: f64,
}

impl MultiTone {
    /// Creates a bank from explicit tones.
    pub fn new(tones: Vec<Tone>) -> Self {
        MultiTone { tones }
    }

    /// Creates a unit-amplitude bank from `(freq, phase)` pairs.
    pub fn from_freqs_phases(freqs: &[f64], phases: &[f64]) -> Self {
        assert_eq!(freqs.len(), phases.len(), "freqs/phases length mismatch");
        MultiTone {
            tones: freqs
                .iter()
                .zip(phases)
                .map(|(&f, &p)| Tone {
                    freq_hz: f,
                    phase: p,
                    amplitude: 1.0,
                })
                .collect(),
        }
    }

    /// Number of tones.
    pub fn len(&self) -> usize {
        self.tones.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.tones.is_empty()
    }

    /// Tone parameters.
    pub fn tones(&self) -> &[Tone] {
        &self.tones
    }

    /// Evaluates the summed waveform at time `t` (seconds).
    pub fn sample(&self, t: f64) -> Complex64 {
        self.tones
            .iter()
            .map(|tone| Complex64::from_polar(tone.amplitude, TAU * tone.freq_hz * t + tone.phase))
            .sum()
    }

    /// Envelope |Σ tones| at time `t`.
    pub fn envelope(&self, t: f64) -> f64 {
        self.sample(t).norm()
    }

    /// Generates `len` samples at `sample_rate` starting from `t0` seconds.
    pub fn generate(&self, len: usize, sample_rate: f64, t0: f64) -> IqBuffer {
        IqBuffer::from_fn(len, sample_rate, |t| self.sample(t0 + t))
    }

    /// Sum of tone amplitudes — the maximum envelope achievable when all
    /// tones align (the paper's peak value `N` for unit amplitudes).
    pub fn amplitude_sum(&self) -> f64 {
        self.tones.iter().map(|t| t.amplitude).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillator_unit_magnitude_and_rate() {
        let mut osc = Oscillator::new(100.0, 1000.0);
        let buf = osc.generate(1000);
        for s in buf.samples() {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
        // After exactly one second the phase must wrap to ~0 for an integer
        // frequency.
        assert!(osc.phase() < 1e-9 || (TAU - osc.phase()) < 1e-9);
    }

    #[test]
    fn oscillator_frequency_via_phase_steps() {
        let mut osc = Oscillator::new(50.0, 1000.0);
        let a = osc.next_sample();
        let b = osc.next_sample();
        let dphi = (b * a.conj()).arg();
        assert!((dphi - TAU * 50.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn oscillator_negative_frequency() {
        let mut osc = Oscillator::new(-50.0, 1000.0);
        let a = osc.next_sample();
        let b = osc.next_sample();
        assert!(((b * a.conj()).arg() + TAU * 50.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn retune_is_phase_continuous() {
        let mut osc = Oscillator::new(100.0, 1000.0);
        for _ in 0..13 {
            osc.next_sample();
        }
        let before = osc.phase();
        osc.retune(333.0);
        assert_eq!(osc.phase(), before);
    }

    #[test]
    fn with_phase_starts_there() {
        let mut osc = Oscillator::with_phase(0.0, 1.0, 1.25);
        assert!((osc.next_sample().arg() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn mix_shifts_spectrum() {
        // DC buffer mixed with f=100 Hz becomes a 100 Hz tone.
        let mut buf = IqBuffer::new(vec![Complex64::ONE; 16], 1000.0);
        let mut osc = Oscillator::new(100.0, 1000.0);
        osc.mix(&mut buf);
        let a = buf.samples()[0];
        let b = buf.samples()[1];
        assert!(((b * a.conj()).arg() - TAU * 0.1).abs() < 1e-12);
    }

    #[test]
    fn multitone_peak_at_alignment() {
        // Tones with zero phases align at t=0: envelope = N.
        let mt = MultiTone::from_freqs_phases(&[0.0, 7.0, 20.0], &[0.0; 3]);
        assert!((mt.envelope(0.0) - 3.0).abs() < 1e-12);
        assert_eq!(mt.amplitude_sum(), 3.0);
        assert_eq!(mt.len(), 3);
    }

    #[test]
    fn multitone_envelope_bounded() {
        let mt = MultiTone::from_freqs_phases(&[0.0, 3.0, 11.0, 17.0], &[0.4, 2.2, 5.0, 1.0]);
        for k in 0..2000 {
            let t = k as f64 / 2000.0;
            assert!(mt.envelope(t) <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn multitone_periodicity_for_integer_freqs() {
        let mt = MultiTone::from_freqs_phases(&[0.0, 7.0, 20.0], &[0.3, 1.0, 2.0]);
        for k in 0..50 {
            let t = k as f64 * 0.017;
            assert!((mt.sample(t) - mt.sample(t + 1.0)).norm() < 1e-9);
        }
    }

    #[test]
    fn multitone_generate_matches_sample() {
        let mt = MultiTone::from_freqs_phases(&[5.0, 9.0], &[0.1, 0.2]);
        let buf = mt.generate(10, 100.0, 0.5);
        for (n, s) in buf.samples().iter().enumerate() {
            let t = 0.5 + n as f64 / 100.0;
            assert!((*s - mt.sample(t)).norm() < 1e-12);
        }
    }
}
