//! # ivn-dsp — digital signal processing substrate for IVN
//!
//! This crate provides every signal-processing primitive used by the IVN
//! (In-Vivo Networking) reproduction: complex arithmetic, unit conversions,
//! IQ sample buffers, oscillators, FFTs, FIR/IIR filters, envelope
//! detection, correlation, noise generation, amplitude modulation,
//! resampling, and the descriptive statistics used by every experiment.
//!
//! Design follows the event-driven, allocation-conscious style of embedded
//! networking stacks: plain data types, no `unsafe`, no hidden global state,
//! and deterministic behaviour (all randomness flows through caller-provided
//! seeded RNGs).
//!
//! ## Quick tour
//!
//! ```
//! use ivn_dsp::complex::Complex64;
//! use ivn_dsp::osc::Oscillator;
//!
//! // Generate a 5 Hz complex tone sampled at 1 kHz and check its envelope.
//! let mut osc = Oscillator::new(5.0, 1000.0);
//! let samples: Vec<Complex64> = (0..1000).map(|_| osc.next_sample()).collect();
//! assert!((samples[0].norm() - 1.0).abs() < 1e-12);
//! ```

pub mod agc;
pub mod block;
pub mod buffer;
pub mod complex;
pub mod correlate;
pub mod envelope;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod iir;
pub mod modulation;
pub mod noise;
pub mod osc;
pub mod resample;
pub mod rotor;
pub mod stats;
pub mod units;
pub mod window;

pub use complex::Complex64;
pub use units::{db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm};
