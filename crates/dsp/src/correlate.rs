//! Correlation and matched filtering.
//!
//! The in-vivo decoder of the paper declares a communication successful when
//! the received waveform's correlation against the tag's known 12-bit FM0
//! preamble exceeds 0.8 (§6.2). This module provides the normalized
//! correlation used for that decision, plus general cross-correlation and a
//! coherent averager that models the reader's 1-second integration.

use crate::complex::Complex64;

/// Full cross-correlation of complex sequences `x ⋆ y` evaluated at lags
/// `0..=x.len()-y.len()` (i.e. `y` slid fully inside `x`).
///
/// Returns an empty vector when `y` is longer than `x` or either is empty.
pub fn xcorr(x: &[Complex64], y: &[Complex64]) -> Vec<Complex64> {
    if y.is_empty() || x.len() < y.len() {
        return Vec::new();
    }
    let lags = x.len() - y.len() + 1;
    (0..lags)
        .map(|lag| {
            x[lag..lag + y.len()]
                .iter()
                .zip(y)
                .map(|(a, b)| *a * b.conj())
                .sum()
        })
        .collect()
}

/// Normalized correlation coefficient at each lag, each in `[0, 1]`.
///
/// `|⟨x_window, y⟩| / (‖x_window‖·‖y‖)`; windows with zero energy yield 0.
pub fn normalized_xcorr(x: &[Complex64], y: &[Complex64]) -> Vec<f64> {
    if y.is_empty() || x.len() < y.len() {
        return Vec::new();
    }
    let ey: f64 = y.iter().map(|s| s.norm_sqr()).sum::<f64>().sqrt();
    if ey == 0.0 {
        return vec![0.0; x.len() - y.len() + 1];
    }
    let lags = x.len() - y.len() + 1;
    (0..lags)
        .map(|lag| {
            let window = &x[lag..lag + y.len()];
            let ex: f64 = window.iter().map(|s| s.norm_sqr()).sum::<f64>().sqrt();
            if ex == 0.0 {
                return 0.0;
            }
            let dot: Complex64 = window.iter().zip(y).map(|(a, b)| *a * b.conj()).sum();
            dot.norm() / (ex * ey)
        })
        .collect()
}

/// Best normalized correlation over all lags and the lag achieving it.
///
/// Returns `(lag, coefficient)`; `None` when no valid lag exists.
pub fn best_match(x: &[Complex64], y: &[Complex64]) -> Option<(usize, f64)> {
    let c = normalized_xcorr(x, y);
    c.into_iter().enumerate().max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Normalized correlation of *real* sequences (e.g. an envelope against a
/// bit template), with means removed — Pearson-style, in `[-1, 1]`.
pub fn normalized_xcorr_real(x: &[f64], y: &[f64]) -> Vec<f64> {
    if y.is_empty() || x.len() < y.len() {
        return Vec::new();
    }
    let my = y.iter().sum::<f64>() / y.len() as f64;
    let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
    let ey = yc.iter().map(|v| v * v).sum::<f64>().sqrt();
    let lags = x.len() - y.len() + 1;
    (0..lags)
        .map(|lag| {
            let w = &x[lag..lag + y.len()];
            let mw = w.iter().sum::<f64>() / w.len() as f64;
            let mut dot = 0.0;
            let mut ew = 0.0;
            for (a, b) in w.iter().zip(&yc) {
                let ac = a - mw;
                dot += ac * b;
                ew += ac * ac;
            }
            let denom = ew.sqrt() * ey;
            if denom == 0.0 {
                0.0
            } else {
                dot / denom
            }
        })
        .collect()
}

/// Best real-valued correlation over all lags: `(lag, coefficient)`.
pub fn best_match_real(x: &[f64], y: &[f64]) -> Option<(usize, f64)> {
    normalized_xcorr_real(x, y)
        .into_iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Coherently averages `count` repetitions of length `period` from `x`.
///
/// This is the out-of-band reader's SNR booster: the tag repeats its reply
/// every CIB period (1 s in the paper), and averaging K repetitions gains
/// 10·log₁₀(K) dB of SNR against white noise.
///
/// Returns `None` when `x` is shorter than `count × period` or `count == 0`.
pub fn coherent_average(x: &[Complex64], period: usize, count: usize) -> Option<Vec<Complex64>> {
    if count == 0 || period == 0 || x.len() < period * count {
        return None;
    }
    let mut acc = vec![Complex64::ZERO; period];
    for rep in 0..count {
        for (a, s) in acc.iter_mut().zip(&x[rep * period..(rep + 1) * period]) {
            *a += *s;
        }
    }
    for a in &mut acc {
        *a = *a / count as f64;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::AwgnSource;
    use ivn_runtime::rng::StdRng;

    fn c(re: f64) -> Complex64 {
        Complex64::from_real(re)
    }

    #[test]
    fn xcorr_finds_embedded_pattern() {
        let pat = vec![c(1.0), c(-1.0), c(1.0)];
        let mut x = vec![c(0.0); 10];
        x[4] = c(1.0);
        x[5] = c(-1.0);
        x[6] = c(1.0);
        let r = xcorr(&x, &pat);
        let (lag, _) = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .unwrap();
        assert_eq!(lag, 4);
    }

    #[test]
    fn xcorr_edge_cases() {
        assert!(xcorr(&[c(1.0)], &[]).is_empty());
        assert!(xcorr(&[c(1.0)], &[c(1.0), c(1.0)]).is_empty());
    }

    #[test]
    fn normalized_is_one_for_exact_match() {
        let pat = vec![c(0.3), c(-0.7), c(0.2), c(0.9)];
        let r = normalized_xcorr(&pat, &pat);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_invariant_to_scale_and_phase() {
        let pat = vec![c(1.0), c(-1.0), c(1.0), c(1.0)];
        let scaled: Vec<Complex64> = pat
            .iter()
            .map(|s| *s * Complex64::from_polar(3.7, 1.1))
            .collect();
        let r = normalized_xcorr(&scaled, &pat);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_match_locates_pattern_in_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut noise = AwgnSource::new(0.01);
        let pat: Vec<Complex64> = (0..32)
            .map(|i| c(if (i / 4) % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let mut x = vec![Complex64::ZERO; 200];
        for (i, p) in pat.iter().enumerate() {
            x[77 + i] = *p;
        }
        for s in &mut x {
            *s += noise.sample(&mut rng);
        }
        let (lag, coeff) = best_match(&x, &pat).unwrap();
        assert_eq!(lag, 77);
        assert!(coeff > 0.9);
    }

    #[test]
    fn real_correlation_pearson_properties() {
        let y = [1.0, -1.0, 1.0, -1.0];
        // Identical → 1.
        let r = normalized_xcorr_real(&y, &y);
        assert!((r[0] - 1.0).abs() < 1e-12);
        // Inverted → -1.
        let inv: Vec<f64> = y.iter().map(|v| -v).collect();
        let r2 = normalized_xcorr_real(&inv, &y);
        assert!((r2[0] + 1.0).abs() < 1e-12);
        // Mean shift does not matter.
        let shifted: Vec<f64> = y.iter().map(|v| v + 10.0).collect();
        let r3 = normalized_xcorr_real(&shifted, &y);
        assert!((r3[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_match_real_finds_preamble() {
        // The paper's 12-bit preamble as a ±1 template inside a longer env.
        let preamble = [1., 1., 0., 1., 0., 0., 1., 0., 0., 0., 1., 1.];
        let tpl: Vec<f64> = preamble
            .iter()
            .map(|b| if *b > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let mut x = vec![0.0; 40];
        for (i, v) in tpl.iter().enumerate() {
            x[13 + i] = *v * 0.4 + 0.5; // scaled + offset
        }
        let (lag, coeff) = best_match_real(&x, &tpl).unwrap();
        assert_eq!(lag, 13);
        assert!(coeff > 0.99);
    }

    #[test]
    fn coherent_average_reduces_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut noise = AwgnSource::new(1.0);
        let period = 64;
        let reps = 100;
        let template: Vec<Complex64> = (0..period)
            .map(|i| c(if i % 8 < 4 { 1.0 } else { -1.0 }))
            .collect();
        let mut x = Vec::with_capacity(period * reps);
        for _ in 0..reps {
            for t in &template {
                x.push(*t + noise.sample(&mut rng));
            }
        }
        let avg = coherent_average(&x, period, reps).unwrap();
        let err: f64 = avg
            .iter()
            .zip(&template)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / period as f64;
        // Residual noise power should be ≈ 1/reps.
        assert!(err < 3.0 / reps as f64, "residual {err}");
    }

    #[test]
    fn coherent_average_rejects_short_input() {
        assert!(coherent_average(&[c(1.0); 10], 8, 2).is_none());
        assert!(coherent_average(&[c(1.0); 10], 0, 2).is_none());
        assert!(coherent_average(&[c(1.0); 10], 5, 0).is_none());
    }
}
