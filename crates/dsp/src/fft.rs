//! Radix-2 Cooley–Tukey FFT and helpers.
//!
//! The spectrum analysis used by the out-of-band reader (locating the
//! backscatter subcarrier next to the CIB jam) and by several benches needs
//! only power-of-two transforms, so a classic iterative radix-2 FFT keeps
//! the substrate self-contained — no external FFT crate.

use crate::complex::Complex64;
use crate::window::Window;
use std::f64::consts::PI;

/// In-place decimation-in-time FFT.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero).
pub fn fft(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse FFT, normalized by 1/N so `ifft(fft(x)) == x`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero).
pub fn ifft(data: &mut [Complex64]) {
    transform(data, true);
    let n = data.len() as f64;
    for d in data.iter_mut() {
        *d = *d / n;
    }
}

/// In-place inverse FFT *without* the 1/N normalization:
/// `ifft_unnormalized(X)[k] = Σₙ X[n]·e^{+j2πnk/N}`.
///
/// The workhorse for sparse-spectrum synthesis (e.g. the CIB envelope
/// kernels): place each tone's complex amplitude directly in its bin and
/// transform — the result is the time-domain sum itself, with no O(N)
/// scaling pass and no allocation.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (or is zero).
pub fn ifft_unnormalized(data: &mut [Complex64]) {
    transform(data, true);
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT length must be a power of two, got {n}"
    );
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Next power of two at or above `n` (minimum 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Windowed power spectrum of a complex signal.
///
/// Pads (or truncates) to `nfft` (a power of two), applies `window`, and
/// returns `|X[k]|²` normalized by the window energy. Bin `k` corresponds
/// to frequency `k/nfft · sample_rate` (wrapping to negative frequencies in
/// the upper half).
pub fn power_spectrum(signal: &[Complex64], nfft: usize, window: Window) -> Vec<f64> {
    assert!(nfft.is_power_of_two(), "nfft must be a power of two");
    let mut buf = vec![Complex64::ZERO; nfft];
    let take = signal.len().min(nfft);
    let w = window.generate(take.max(1));
    let wsum: f64 = w.iter().map(|x| x * x).sum::<f64>().max(f64::MIN_POSITIVE);
    for i in 0..take {
        buf[i] = signal[i] * w[i];
    }
    fft(&mut buf);
    buf.iter().map(|x| x.norm_sqr() / wsum).collect()
}

/// Frequency (Hz) of spectrum bin `k` for an `nfft`-point transform at
/// `sample_rate`, mapping the upper half to negative frequencies.
pub fn bin_frequency(k: usize, nfft: usize, sample_rate: f64) -> f64 {
    let k = k % nfft;
    if k <= nfft / 2 {
        k as f64 * sample_rate / nfft as f64
    } else {
        (k as f64 - nfft as f64) * sample_rate / nfft as f64
    }
}

/// Finds the bin with maximal power and returns `(bin, frequency_hz, power)`.
pub fn dominant_tone(spectrum: &[f64], sample_rate: f64) -> (usize, f64, f64) {
    let nfft = spectrum.len();
    let (k, &p) = spectrum
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("spectrum must be non-empty");
    (k, bin_frequency(k, nfft, sample_rate), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osc::Oscillator;

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let mut d = vec![Complex64::ZERO; 3];
        fft(&mut d);
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut d = vec![Complex64::ZERO; 8];
        d[0] = Complex64::ONE;
        fft(&mut d);
        for x in &d {
            assert!((*x - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_bin_zero() {
        let mut d = vec![Complex64::ONE; 16];
        fft(&mut d);
        assert!((d[0] - Complex64::new(16.0, 0.0)).norm() < 1e-9);
        for x in &d[1..] {
            assert!(x.norm() < 1e-9);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        // f = 3/16 of the sample rate → bin 3.
        let n = 16;
        let mut d: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * 3.0 * i as f64 / n as f64))
            .collect();
        fft(&mut d);
        assert!((d[3].norm() - n as f64).abs() < 1e-9);
        for (k, x) in d.iter().enumerate() {
            if k != 3 {
                assert!(x.norm() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn ifft_unnormalized_synthesizes_sparse_tones() {
        // Place 1·e^{j0.4} in bin 3 and 0.5·e^{-j1.1} in bin 61 (= -3 mod
        // 64): the transform is the two-tone time series, unscaled.
        let n = 64;
        let a = Complex64::from_polar(1.0, 0.4);
        let b = Complex64::from_polar(0.5, -1.1);
        let mut d = vec![Complex64::ZERO; n];
        d[3] = a;
        d[n - 3] = b;
        ifft_unnormalized(&mut d);
        for k in 0..n {
            let t = k as f64 / n as f64;
            let want =
                a * Complex64::cis(2.0 * PI * 3.0 * t) + b * Complex64::cis(-2.0 * PI * 3.0 * t);
            assert!((d[k] - want).norm() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let mut rng_state = 0x9E37_79B9u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let orig: Vec<Complex64> = (0..64).map(|_| Complex64::new(next(), next())).collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let sig: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let time_energy: f64 = sig.iter().map(|s| s.norm_sqr()).sum();
        let mut d = sig.clone();
        fft(&mut d);
        let freq_energy: f64 = d.iter().map(|s| s.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn power_spectrum_finds_tone() {
        let fs = 1000.0;
        let mut osc = Oscillator::new(125.0, fs);
        let sig = osc.generate(256);
        let spec = power_spectrum(sig.samples(), 256, Window::Hann);
        let (_, freq, _) = dominant_tone(&spec, fs);
        assert!((freq - 125.0).abs() < fs / 256.0);
    }

    #[test]
    fn negative_frequency_mapping() {
        assert_eq!(bin_frequency(0, 8, 800.0), 0.0);
        assert_eq!(bin_frequency(4, 8, 800.0), 400.0);
        assert_eq!(bin_frequency(7, 8, 800.0), -100.0);
        // wraps modulo nfft
        assert_eq!(bin_frequency(8, 8, 800.0), 0.0);
    }

    #[test]
    fn next_pow2_behaviour() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
    }
}
