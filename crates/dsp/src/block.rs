//! Block-streaming sample-path primitives.
//!
//! The paper's prototype streams baseband continuously through USRP
//! front-ends; the whole-buffer APIs elsewhere in the workspace
//! materialize a full 1-second CIB period (`O(fs)` memory per stage)
//! instead. This module defines the constant-memory alternative: a
//! sample path is a [`BlockSource`] feeding one or more [`BlockStage`]s
//! into a [`BlockSink`], all exchanging fixed-size blocks through
//! reusable scratch `Vec`s. State that must survive a block boundary
//! (oscillator phase, delay-line history, charge-pump voltage, partial
//! FM0 symbols) lives inside the stage, so pushing the same samples in
//! blocks of 1 or 4096 produces **bit-identical** output — the property
//! `tests/streaming_equivalence.rs` pins across the whole pipeline.
//!
//! Conventions:
//! - stages **append** to their output scratch and never clear it; the
//!   driver clears scratch buffers between blocks and reuses them, so
//!   the steady state allocates nothing;
//! - `flush` ends the stream, draining whatever latency the stage holds
//!   (e.g. a negative trigger shift that needs future profile samples);
//! - per-stage memory is bounded by the block size, never by the total
//!   sample count ([`Footprint`] measures this and `verify.sh` gates it).

use crate::complex::Complex64;

/// Default block size for streaming drivers: large enough to amortize
/// per-block overhead, small enough that per-stage scratch stays cache
/// resident (4096 complex samples = 64 KiB).
pub const DEFAULT_BLOCK: usize = 4096;

/// Produces sample blocks (the head of a streaming chain).
pub trait BlockSource {
    /// The sample type produced.
    type Item: Copy;

    /// Appends up to `max` samples to `out`; returns how many were
    /// produced. Returning `0` means the source is exhausted.
    fn fill(&mut self, out: &mut Vec<Self::Item>, max: usize) -> usize;
}

/// Transforms sample blocks, carrying whatever state must survive a
/// block boundary.
pub trait BlockStage {
    /// Input sample type.
    type In: Copy;
    /// Output sample type.
    type Out: Copy;

    /// Consumes one input block and appends the produced samples to
    /// `out`. A stage with internal latency may produce fewer (or more)
    /// samples than it consumed.
    fn push(&mut self, input: &[Self::In], out: &mut Vec<Self::Out>);

    /// Ends the stream: appends any samples still held back by the
    /// stage's latency. Default: stateless stages have nothing to drain.
    fn flush(&mut self, out: &mut Vec<Self::Out>) {
        let _ = out;
    }
}

/// Consumes sample blocks (the tail of a streaming chain).
pub trait BlockSink {
    /// Input sample type.
    type In: Copy;

    /// Consumes one block.
    fn consume(&mut self, input: &[Self::In]);

    /// Ends the stream (e.g. final bookkeeping on an integrator).
    fn finish(&mut self) {}
}

/// A constant-amplitude [`BlockSource`] of known length — the "carrier
/// on" drive profile of the pipeline's power-delivery phase.
#[derive(Debug, Clone)]
pub struct ConstSource {
    value: f64,
    remaining: usize,
}

impl ConstSource {
    /// A source emitting `len` samples of `value`.
    pub fn new(value: f64, len: usize) -> Self {
        ConstSource {
            value,
            remaining: len,
        }
    }
}

impl BlockSource for ConstSource {
    type Item = f64;

    fn fill(&mut self, out: &mut Vec<f64>, max: usize) -> usize {
        let n = self.remaining.min(max);
        out.extend(std::iter::repeat(self.value).take(n));
        self.remaining -= n;
        n
    }
}

/// Accumulates `block[k] · gain` into `acc[k]` — the per-antenna flat
/// channel application + superposition step shared by the streaming
/// mixer ([`ivn-em`]'s `BlockSuperposer`) and the whole-buffer
/// `TxBank::superpose` wrapper. Both paths run this exact loop, so they
/// agree bit for bit.
///
/// # Panics
/// Panics on length mismatch.
pub fn accumulate_scaled(acc: &mut [Complex64], block: &[Complex64], gain: Complex64) {
    assert_eq!(acc.len(), block.len(), "block length mismatch");
    for (a, &b) in acc.iter_mut().zip(block) {
        *a += b * gain;
    }
}

/// Running maximum of `|x|` over a stream — the constant-memory
/// replacement for "materialize the envelope, then take its peak".
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakMeter {
    peak: f64,
}

impl PeakMeter {
    /// A meter starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one real sample into the running peak.
    #[inline]
    pub fn observe(&mut self, amplitude: f64) {
        self.peak = self.peak.max(amplitude);
    }

    /// Folds a block of complex samples (by magnitude).
    pub fn observe_block(&mut self, block: &[Complex64]) {
        for s in block {
            self.observe(s.norm());
        }
    }

    /// The peak seen so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

impl BlockSink for PeakMeter {
    type In = f64;

    fn consume(&mut self, input: &[f64]) {
        for &v in input {
            self.observe(v);
        }
    }
}

/// Order-sensitive FNV-1a digest of a sample stream's exact bit
/// patterns: two paths produce the same digest iff they produce the
/// same samples in the same order. Splitting a stream into blocks does
/// not change the digest, so `verify.sh` compares the streaming and
/// batch pipelines through this.
#[derive(Debug, Clone, Copy)]
pub struct StreamHasher {
    state: u64,
}

impl Default for StreamHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamHasher {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// A fresh hasher (FNV-1a offset basis).
    pub fn new() -> Self {
        StreamHasher {
            state: Self::OFFSET,
        }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Hashes a block of real samples (exact f64 bit patterns).
    pub fn update_real(&mut self, block: &[f64]) {
        for &v in block {
            self.mix(v.to_bits());
        }
    }

    /// Hashes a block of complex samples (re then im bit patterns).
    pub fn update_complex(&mut self, block: &[Complex64]) {
        for s in block {
            self.mix(s.re.to_bits());
            self.mix(s.im.to_bits());
        }
    }

    /// The digest so far.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

/// Peak scratch-buffer sizes per stage, in samples — the evidence that a
/// streaming driver's memory is bounded by the block size rather than
/// the stream length. Stages report the length of every scratch buffer
/// they touch each block; the meter keeps the per-stage maximum.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    entries: Vec<(&'static str, usize)>,
}

impl Footprint {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a buffer of `len` samples owned by `stage`, keeping the
    /// maximum per stage.
    pub fn observe(&mut self, stage: &'static str, len: usize) {
        match self.entries.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, max)) => *max = (*max).max(len),
            None => self.entries.push((stage, len)),
        }
    }

    /// Per-stage peak buffer sizes, in report order.
    pub fn entries(&self) -> &[(&'static str, usize)] {
        &self.entries
    }

    /// The largest single per-stage buffer seen.
    pub fn max_stage(&self) -> usize {
        self.entries.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_source_emits_exact_length() {
        let mut src = ConstSource::new(1.0, 10);
        let mut out = Vec::new();
        assert_eq!(src.fill(&mut out, 4), 4);
        assert_eq!(src.fill(&mut out, 4), 4);
        assert_eq!(src.fill(&mut out, 4), 2);
        assert_eq!(src.fill(&mut out, 4), 0);
        assert_eq!(out, vec![1.0; 10]);
    }

    #[test]
    fn accumulate_scaled_matches_manual() {
        let mut acc = vec![Complex64::ZERO; 3];
        let block = vec![Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        accumulate_scaled(&mut acc, &block, Complex64::from_real(2.0));
        assert_eq!(acc[0], Complex64::new(2.0, 0.0));
        assert_eq!(acc[1], Complex64::new(0.0, 2.0));
        assert_eq!(acc[2], Complex64::new(2.0, 2.0));
    }

    #[test]
    fn peak_meter_matches_batch_peak() {
        let env = [0.3, 1.7, 0.2, 1.69];
        let mut m = PeakMeter::new();
        m.consume(&env);
        assert_eq!(m.peak(), 1.7);
    }

    #[test]
    fn hasher_is_split_invariant_but_order_sensitive() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut a = StreamHasher::new();
        a.update_real(&data);
        let mut b = StreamHasher::new();
        for chunk in data.chunks(7) {
            b.update_real(chunk);
        }
        assert_eq!(a.digest(), b.digest());
        let mut rev = StreamHasher::new();
        let reversed: Vec<f64> = data.iter().rev().copied().collect();
        rev.update_real(&reversed);
        assert_ne!(a.digest(), rev.digest());
    }

    #[test]
    fn footprint_keeps_per_stage_max() {
        let mut f = Footprint::new();
        f.observe("sdr", 100);
        f.observe("sdr", 80);
        f.observe("em", 120);
        assert_eq!(f.entries(), &[("sdr", 100), ("em", 120)]);
        assert_eq!(f.max_stage(), 120);
    }
}
