//! Descriptive statistics for experiment reporting.
//!
//! Every figure in the paper's evaluation is a median with 10th/90th
//! percentile error bars or an empirical CDF; this module is the single
//! implementation used by the bench harness, tests, and examples.
//! [`Summary`] and [`Ecdf`] round-trip through the `ivn-runtime` JSON
//! layer for machine-readable bench output.

use ivn_runtime::json::{field, FromJson, Json, JsonError, ToJson};

/// Percentile of a sample set by linear interpolation between closest
/// ranks (the common "type 7" estimator).
///
/// `p` is in `[0, 100]`. Returns `None` for an empty slice.
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile). `None` when empty.
pub fn median(data: &[f64]) -> Option<f64> {
    percentile(data, 50.0)
}

/// Arithmetic mean. `None` when empty.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator). `None` for fewer than two
/// points.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data).expect("non-empty");
    let var = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
    Some(var.sqrt())
}

/// The paper's standard summary: median with 10th and 90th percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Computes the summary; `None` when the data is empty.
    pub fn of(data: &[f64]) -> Option<Summary> {
        Some(Summary {
            p10: percentile(data, 10.0)?,
            median: percentile(data, 50.0)?,
            p90: percentile(data, 90.0)?,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.median, self.p10, self.p90)
    }
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("p10", self.p10.into()),
            ("median", self.median.into()),
            ("p90", self.p90.into()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(value: &Json) -> Result<Summary, JsonError> {
        Ok(Summary {
            p10: field(value, "p10")?,
            median: field(value, "median")?,
            p90: field(value, "p90")?,
        })
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from samples (NaNs are dropped).
    pub fn new(mut data: Vec<f64>) -> Self {
        data.retain(|x| !x.is_nan());
        data.sort_by(f64::total_cmp);
        Ecdf { sorted: data }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile: smallest sample with CDF ≥ `q` (`q` in `(0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 0.0 {
            return self.sorted.first().copied();
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize - 1).min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Iterates `(x, F(x))` points suitable for plotting or printing the
    /// paper's CDF figures.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl ToJson for Ecdf {
    fn to_json(&self) -> Json {
        Json::obj([("samples", self.sorted.clone().into())])
    }
}

impl FromJson for Ecdf {
    fn from_json(value: &Json) -> Result<Ecdf, JsonError> {
        let samples: Vec<f64> = field(value, "samples")?;
        // `new` re-sorts, so a hand-edited file still yields a valid ECDF.
        Ok(Ecdf::new(samples))
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations including out-of-range.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below range / at-or-above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(4.0));
        assert_eq!(percentile(&data, 50.0), Some(2.5));
        assert_eq!(median(&data), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&data), Some(2.5));
    }

    #[test]
    fn mean_and_std() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), Some(5.0));
        let sd = std_dev(&data).unwrap();
        assert!((sd - 2.138).abs() < 1e-3);
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert!(s.p10 < s.median && s.median < s.p90);
        assert!(s.to_string().contains("3.000"));
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert_eq!(e.quantile(0.25), Some(1.0));
    }

    #[test]
    fn ecdf_drops_nan_and_handles_empty() {
        let e = Ecdf::new(vec![f64::NAN, 1.0]);
        assert_eq!(e.len(), 1);
        let empty = Ecdf::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.eval(1.0), 0.0);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn ecdf_points_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        let pts: Vec<(f64, f64)> = e.points().collect();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.9, 9.9, -1.0, 10.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "invalid histogram bounds")]
    fn histogram_rejects_bad_bounds() {
        Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn summary_json_round_trip() {
        let s = Summary::of(&[1.0, 2.5, 3.125, 4.0, 5.75]).unwrap();
        let text = s.to_json().dump();
        let back = Summary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert!(Summary::from_json(&Json::obj([("p10", 1.0.into())])).is_err());
    }

    #[test]
    fn ecdf_json_round_trip() {
        let e = Ecdf::new(vec![3.0, 1.0, 0.1 + 0.2, -7.5e-3]);
        let text = e.to_json().dump();
        let back = Ecdf::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
        // Bit-exact samples after the trip through text.
        for (a, b) in back.samples().iter().zip(e.samples()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
