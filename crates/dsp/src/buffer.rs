//! IQ sample buffers with sample-rate metadata.
//!
//! An [`IqBuffer`] is the unit of exchange between the SDR front-end, the
//! channel simulator and the decoders: a contiguous run of complex baseband
//! samples plus the rate at which they were taken. Keeping the rate attached
//! to the data prevents the classic bug of mixing streams sampled at
//! different rates.

use crate::complex::Complex64;

/// A buffer of complex baseband samples at a known sample rate.
#[derive(Debug, Clone, PartialEq)]
pub struct IqBuffer {
    samples: Vec<Complex64>,
    sample_rate: f64,
}

impl IqBuffer {
    /// Creates a buffer from raw samples.
    ///
    /// # Panics
    /// Panics if `sample_rate` is not strictly positive and finite.
    pub fn new(samples: Vec<Complex64>, sample_rate: f64) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        IqBuffer {
            samples,
            sample_rate,
        }
    }

    /// Creates a zero-filled buffer of `len` samples.
    pub fn zeros(len: usize, sample_rate: f64) -> Self {
        Self::new(vec![Complex64::ZERO; len], sample_rate)
    }

    /// Synthesizes a buffer by evaluating `f(t)` at each sample instant
    /// `t = n / sample_rate` for `n` in `0..len`.
    pub fn from_fn(len: usize, sample_rate: f64, mut f: impl FnMut(f64) -> Complex64) -> Self {
        let dt = 1.0 / sample_rate;
        let samples = (0..len).map(|n| f(n as f64 * dt)).collect();
        Self::new(samples, sample_rate)
    }

    /// Sample rate in samples/second.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples held.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration covered by the samples, in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Time of sample `n` relative to the start of the buffer, seconds.
    #[inline]
    pub fn time_of(&self, n: usize) -> f64 {
        n as f64 / self.sample_rate
    }

    /// Read-only view of the samples.
    #[inline]
    pub fn samples(&self) -> &[Complex64] {
        &self.samples
    }

    /// Mutable view of the samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [Complex64] {
        &mut self.samples
    }

    /// Consumes the buffer, returning the sample vector.
    #[inline]
    pub fn into_samples(self) -> Vec<Complex64> {
        self.samples
    }

    /// Mean power (average |x|²) of the buffer; 0 for an empty buffer.
    pub fn mean_power(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak instantaneous power, max |x|²; 0 for an empty buffer.
    pub fn peak_power(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.norm_sqr())
            .fold(0.0, f64::max)
    }

    /// Index and magnitude of the strongest sample; `None` if empty.
    pub fn peak_sample(&self) -> Option<(usize, f64)> {
        self.samples
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.norm()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Adds another buffer sample-wise (e.g. superposing signals at a
    /// receiver).
    ///
    /// # Panics
    /// Panics if lengths or sample rates differ: superposition is only
    /// meaningful for streams on a common clock.
    pub fn add_assign(&mut self, other: &IqBuffer) {
        assert_eq!(self.len(), other.len(), "buffer length mismatch");
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9,
            "sample rate mismatch"
        );
        for (a, b) in self.samples.iter_mut().zip(other.samples.iter()) {
            *a += *b;
        }
    }

    /// Scales every sample by a complex gain (a flat channel).
    pub fn scale(&mut self, gain: Complex64) {
        for s in &mut self.samples {
            *s *= gain;
        }
    }

    /// Returns a sub-range as a new buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> IqBuffer {
        IqBuffer::new(self.samples[range].to_vec(), self.sample_rate)
    }

    /// Appends the samples of `other`.
    ///
    /// # Panics
    /// Panics on sample-rate mismatch.
    pub fn extend(&mut self, other: &IqBuffer) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9,
            "sample rate mismatch"
        );
        self.samples.extend_from_slice(&other.samples);
    }

    /// Magnitude envelope |x[n]| of the buffer.
    pub fn envelope(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.norm()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = IqBuffer::zeros(100, 1e6);
        assert_eq!(b.len(), 100);
        assert!(!b.is_empty());
        assert_eq!(b.mean_power(), 0.0);
        assert_eq!(b.peak_power(), 0.0);
        assert!((b.duration() - 1e-4).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn rejects_bad_rate() {
        let _ = IqBuffer::new(vec![], 0.0);
    }

    #[test]
    fn from_fn_evaluates_time() {
        let b = IqBuffer::from_fn(4, 2.0, |t| Complex64::from_real(t));
        let re: Vec<f64> = b.samples().iter().map(|s| s.re).collect();
        assert_eq!(re, vec![0.0, 0.5, 1.0, 1.5]);
        assert_eq!(b.time_of(3), 1.5);
    }

    #[test]
    fn power_measures() {
        let b = IqBuffer::new(
            vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 3.0)],
            1.0,
        );
        assert!((b.mean_power() - 5.0).abs() < 1e-12);
        assert!((b.peak_power() - 9.0).abs() < 1e-12);
        let (idx, mag) = b.peak_sample().unwrap();
        assert_eq!(idx, 1);
        assert!((mag - 3.0).abs() < 1e-12);
    }

    #[test]
    fn superposition() {
        let mut a = IqBuffer::new(vec![Complex64::ONE; 4], 1.0);
        let b = IqBuffer::new(vec![Complex64::I; 4], 1.0);
        a.add_assign(&b);
        for s in a.samples() {
            assert!((*s - Complex64::new(1.0, 1.0)).norm() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn superposition_length_checked() {
        let mut a = IqBuffer::zeros(4, 1.0);
        let b = IqBuffer::zeros(5, 1.0);
        a.add_assign(&b);
    }

    #[test]
    #[should_panic(expected = "sample rate mismatch")]
    fn superposition_rate_checked() {
        let mut a = IqBuffer::zeros(4, 1.0);
        let b = IqBuffer::zeros(4, 2.0);
        a.add_assign(&b);
    }

    #[test]
    fn scale_applies_complex_gain() {
        let mut b = IqBuffer::new(vec![Complex64::ONE; 3], 1.0);
        b.scale(Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2));
        for s in b.samples() {
            assert!((s.norm() - 2.0).abs() < 1e-12);
            assert!((s.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_and_extend() {
        let mut a = IqBuffer::from_fn(10, 1.0, |t| Complex64::from_real(t));
        let s = a.slice(2..5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples()[0].re, 2.0);
        a.extend(&s);
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn envelope_is_magnitude() {
        let b = IqBuffer::new(vec![Complex64::new(3.0, 4.0)], 1.0);
        assert_eq!(b.envelope(), vec![5.0]);
    }
}
