//! Fig. 12 — CDF of the ratio of CIB's received power to the blind
//! 10-antenna baseline's, per location (log-scale x-axis in the paper).

use ivn_core::experiment::cib_vs_baseline_cdf;
use ivn_core::scenario::Scenario;

/// Renders Fig. 12 for a `ratio_cdf` scenario.
pub fn render(s: &Scenario, quick: bool) -> String {
    let cdf = cib_vs_baseline_cdf(s, quick);
    let n = s.array.n_antennas;
    let mut out = crate::header(&format!(
        "Fig. 12 — CDF of CIB / {n}-antenna-baseline power ratio"
    ));
    out += &format!("{:>14}  {:>10}\n", "ratio (log)", "CDF");
    for exp in [
        -0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0,
    ] {
        let x = 10f64.powf(exp);
        out += &format!("{:>14.2}  {:>10.3}\n", x, cdf.eval(x));
    }
    out += &format!(
        "\nCIB wins at {:.1}% of locations (paper: >99%)\nmedian ratio {:.1}× (paper: ~8×); p99 {:.0}× (paper: >100× occurs)\n",
        100.0 * (1.0 - cdf.eval(1.0)),
        cdf.quantile(0.5).unwrap_or(0.0),
        cdf.quantile(0.99).unwrap_or(0.0),
    );
    out
}

/// Regenerates Fig. 12 from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig12").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_stats_present() {
        let s = super::run(true);
        assert!(s.contains("median ratio"));
        assert!(s.contains("CIB wins"));
    }
}
