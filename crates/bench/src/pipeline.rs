//! End-to-end *sample path*: the hardware chain the paper's prototype ran,
//! at baseband sample level rather than through the analytic envelope the
//! figure modules use.
//!
//! One pass chains every pipeline crate: frequency-plan scoring
//! (`freqsel`) → synchronized bank synthesis and per-device emission
//! (`sdr`) → blind per-antenna channels (`em`) → superposition at the
//! sensor → Dickson-pump power-up on the received power envelope
//! (`harvester`) → PIE downlink and FM0 uplink codec round trips (`rfid`).
//! Under `--trace` this is the target that exercises every instrumented
//! stage in a single timeline.

use ivn_core::freqsel::expected_peak;
use ivn_core::PAPER_OFFSETS_HZ;
use ivn_dsp::complex::Complex64;
use ivn_dsp::envelope;
use ivn_em::channel::ChannelEnsemble;
use ivn_harvester::powerup::TagPowerProfile;
use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn_rfid::fm0::Fm0;
use ivn_rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};
use ivn_runtime::rng::{Rng, StdRng};
use ivn_sdr::bank::TxBank;
use ivn_sdr::clock::ClockDistribution;

const SEED: u64 = 42;
const N_ANTENNAS: usize = 5;
const CARRIER_HZ: f64 = 915e6;
/// Headroom above the tag's required peak power when calibrating the
/// received level (the "place the sensor inside range" step).
const POWER_MARGIN: f64 = 2.0;

/// Runs the sample-path chain and renders its stage-by-stage summary.
pub fn run(quick: bool) -> String {
    let mut out =
        crate::header("PIPELINE — sample-path chain (freqsel → sdr → em → harvester → rfid)");
    let mut rng = StdRng::seed_from_u64(SEED);
    let offsets = &PAPER_OFFSETS_HZ[..N_ANTENNAS];
    // One full CIB period (1 s) of baseband; the tones span 137 Hz so a
    // few kS/s resolves every envelope feature.
    let sample_rate = if quick { 4096.0 } else { 16384.0 };
    let n_samples = sample_rate as usize;

    // freqsel: score the plan with the Eq. 10 Monte-Carlo objective.
    let draws = if quick { 8 } else { 64 };
    let grid = if quick { 256 } else { 1024 };
    let score = expected_peak(offsets, draws, grid, &mut rng);
    out += &format!(
        "freqsel    E[Y_peak] of {{{}}} Hz plan: {:.3} (of {} max)\n",
        offsets
            .iter()
            .map(|f| format!("{f:.0}"))
            .collect::<Vec<_>>()
            .join(", "),
        score,
        N_ANTENNAS
    );

    // sdr: synthesize the synchronized bank and emit a carrier-on profile.
    let bank = TxBank::new(
        &mut rng,
        N_ANTENNAS,
        CARRIER_HZ,
        sample_rate,
        offsets,
        &ClockDistribution::octoclock(),
    );
    let profile = vec![1.0; n_samples];
    let emissions = bank.emit_all(&profile, 0.05);
    let single_amp = emissions[0].samples()[0].norm();
    out += &format!(
        "sdr        {} devices emitted {} samples each at {:.0} S/s\n",
        N_ANTENNAS, n_samples, sample_rate
    );

    // em: each device sees its own blind channel at its own emission
    // frequency (narrowband superposition).
    let ens = ChannelEnsemble::blind(&mut rng, N_ANTENNAS, 0.3, CARRIER_HZ);
    let gains: Vec<Complex64> = (0..N_ANTENNAS)
        .map(|i| ens.responses(bank.emission_hz(i))[i])
        .collect();
    let rx = TxBank::superpose(&emissions, &gains);
    let env = rx.envelope();
    let (_, peak_amp) = envelope::peak(&env).expect("non-empty envelope");
    let cib_gain = peak_amp / (0.3 * single_amp);
    out += &format!(
        "em         blind channels drawn; envelope peaks at {:.2}x one antenna\n",
        cib_gain
    );

    // harvester: calibrate the received level so the peak sits at
    // POWER_MARGIN × the tag's wake threshold, then run the pump.
    let tag = TagPowerProfile::standard_tag();
    let p_req = tag.required_peak_power_watts();
    let scale = POWER_MARGIN * p_req / (peak_amp * peak_amp);
    let power: Vec<f64> = env.iter().map(|&a| a * a * scale).collect();
    let outcome = tag.power_up(&power, sample_rate);
    out += &format!(
        "harvester  peak {:.1} µW vs {:.1} µW required: powered={} t={}\n",
        1e6 * POWER_MARGIN * p_req,
        1e6 * p_req,
        outcome.powered,
        outcome
            .time_to_power_s
            .map(|t| format!("{:.0} ms", 1e3 * t))
            .unwrap_or_else(|| "-".into()),
    );

    // rfid downlink: PIE-encode a Query, rasterize, decode it back.
    let bits = Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    }
    .encode();
    let pie = PieParams::paper_defaults();
    let frame = rasterize(&encode_frame(&bits, &pie, true), 400e3, 0.0);
    let downlink_ok = decode_frame(&frame, 400e3)
        .map(|d| d == bits)
        .unwrap_or(false);

    // rfid uplink: FM0 round trip of a random RN16.
    let rn16: Vec<bool> = (0..16).map(|_| rng.random::<bool>()).collect();
    let fm0 = Fm0::new(8);
    let uplink_ok = fm0.decode(&fm0.encode(&rn16)) == rn16;
    out += &format!(
        "rfid       PIE Query round trip: {}; FM0 RN16 round trip: {}\n",
        if downlink_ok { "ok" } else { "FAIL" },
        if uplink_ok { "ok" } else { "FAIL" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_chain_succeeds() {
        let text = run(true);
        assert!(text.contains("powered=true"), "{text}");
        assert!(text.contains("PIE Query round trip: ok"), "{text}");
        assert!(text.contains("FM0 RN16 round trip: ok"), "{text}");
    }

    #[test]
    fn pipeline_is_deterministic() {
        assert_eq!(run(true), run(true));
    }
}
