//! End-to-end *sample path*: the hardware chain the paper's prototype ran,
//! at baseband sample level rather than through the analytic envelope the
//! figure modules use.
//!
//! One pass chains every pipeline crate: frequency-plan scoring
//! (`freqsel`) → synchronized bank synthesis and per-device emission
//! (`sdr`) → blind per-antenna channels (`em`) → superposition at the
//! sensor → Dickson-pump power-up on the received power envelope
//! (`harvester`) → PIE downlink and FM0 uplink codec round trips (`rfid`).
//! Under `--trace` this is the target that exercises every instrumented
//! stage in a single timeline.
//!
//! ## Streaming vs batch
//!
//! The default driver is the **block-streaming** one: samples flow
//! through the chain in fixed-size blocks via the `ivn_dsp::block`
//! traits, so per-stage memory is O(block) rather than O(fs) — a full
//! 1-second CIB period at 1 MS/s runs in a few MB. Two passes are made
//! over the (regenerable, deterministic) sample stream: a calibration
//! pass that measures the running envelope peaks, then a power pass
//! that drives the harvester and hashes the received stream. The
//! whole-buffer path ([`outputs_batch`]) is kept for cross-checking:
//! both produce identical [`PathOutputs`] — including a bit-exact
//! FNV-1a hash of every received sample — at any block size or worker
//! count (`tests/streaming_equivalence.rs`, and the `verify.sh` gate).

use ivn_core::freqsel::expected_peak;
use ivn_core::PAPER_OFFSETS_HZ;
use ivn_dsp::block::{BlockSource, ConstSource, Footprint, PeakMeter, StreamHasher, DEFAULT_BLOCK};
use ivn_dsp::envelope;
use ivn_em::channel::ChannelEnsemble;
use ivn_em::stream::BlockSuperposer;
use ivn_harvester::powerup::{PowerUpOutcome, TagPowerProfile};
use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn_rfid::fm0::Fm0;
use ivn_rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};
use ivn_rfid::stream::{Fm0Decoder, PieStreamDecoder, RunRasterizer};
use ivn_runtime::rng::{Rng, StdRng};
use ivn_sdr::bank::TxBank;
use ivn_sdr::clock::ClockDistribution;
use std::time::Instant;

const SEED: u64 = 42;
const N_ANTENNAS: usize = 5;
const CARRIER_HZ: f64 = 915e6;
/// Headroom above the tag's required peak power when calibrating the
/// received level (the "place the sensor inside range" step).
const POWER_MARGIN: f64 = 2.0;
/// PA drive for the carrier-on profile.
const DRIVE: f64 = 0.05;
/// Sample rate of the PIE downlink frame (envelope-level, not RF).
const RFID_FS: f64 = 400e3;

/// Knobs of the streaming driver.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Override the sample rate (defaults to the quick/full presets).
    pub sample_rate: Option<f64>,
    /// Samples per block.
    pub block: usize,
    /// Worker threads advancing the per-device emitter lanes.
    pub threads: usize,
    /// Append footprint/throughput diagnostics to the rendered output.
    pub stats: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            sample_rate: None,
            block: DEFAULT_BLOCK,
            threads: 1,
            stats: false,
        }
    }
}

/// Everything the sample path computes, in comparable form: the
/// streaming and batch drivers must produce equal values (the received
/// stream itself is compared through `rx_hash`).
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutputs {
    /// Sample rate of the CIB period, S/s.
    pub sample_rate: f64,
    /// Samples in the 1-second period.
    pub n_samples: usize,
    /// freqsel Eq. 10 Monte-Carlo score.
    pub score: f64,
    /// Running peak amplitude of device 0's emission (calibration).
    pub single_amp: f64,
    /// Running peak amplitude of the received superposition.
    pub peak_amp: f64,
    /// Harvester outcome on the calibrated power envelope.
    pub outcome: PowerUpOutcome,
    /// PIE Query round trip succeeded.
    pub downlink_ok: bool,
    /// FM0 RN16 round trip succeeded.
    pub uplink_ok: bool,
    /// FNV-1a digest of every received (superposed) sample, in order.
    pub rx_hash: u64,
}

/// Outputs plus streaming diagnostics.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The comparable path outputs.
    pub outputs: PathOutputs,
    /// Block size used.
    pub block: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Peak per-stage scratch sizes, samples.
    pub footprint: Vec<(&'static str, usize)>,
    /// Wall-clock per stage over the power pass, (stage, ns, samples).
    pub stage_ns: Vec<(&'static str, u128, usize)>,
}

struct SharedSetup {
    bank: TxBank,
    superposer: BlockSuperposer,
    tag: TagPowerProfile,
    score: f64,
    rn16: Vec<bool>,
    sample_rate: f64,
    n_samples: usize,
}

/// Seeds the RNG and builds the stages both drivers share. RNG draw
/// order (freqsel → bank → channels → RN16) is part of the output
/// contract: the two paths must consume the stream identically.
fn setup(quick: bool, sample_rate: Option<f64>) -> SharedSetup {
    let mut rng = StdRng::seed_from_u64(SEED);
    let offsets = &PAPER_OFFSETS_HZ[..N_ANTENNAS];
    // One full CIB period (1 s) of baseband; the tones span 137 Hz so a
    // few kS/s resolves every envelope feature.
    let sample_rate = sample_rate.unwrap_or(if quick { 4096.0 } else { 16384.0 });
    let n_samples = sample_rate as usize;

    // freqsel: score the plan with the Eq. 10 Monte-Carlo objective.
    let draws = if quick { 8 } else { 64 };
    let grid = if quick { 256 } else { 1024 };
    let score = expected_peak(offsets, draws, grid, &mut rng);

    // sdr: the synchronized bank.
    let bank = TxBank::new(
        &mut rng,
        N_ANTENNAS,
        CARRIER_HZ,
        sample_rate,
        offsets,
        &ClockDistribution::octoclock(),
    );

    // em: each device sees its own blind channel at its own emission
    // frequency (narrowband superposition).
    let ens = ChannelEnsemble::blind(&mut rng, N_ANTENNAS, 0.3, CARRIER_HZ);
    let superposer = BlockSuperposer::from_ensemble(&ens, |i| bank.emission_hz(i));

    let rn16: Vec<bool> = (0..16).map(|_| rng.random::<bool>()).collect();
    SharedSetup {
        bank,
        superposer,
        tag: TagPowerProfile::standard_tag(),
        score,
        rn16,
        sample_rate,
        n_samples,
    }
}

/// The Query command the downlink round-trips.
fn query_bits() -> Vec<bool> {
    Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    }
    .encode()
}

/// Runs the sample path with the **block-streaming** driver: per-stage
/// memory stays O(`opts.block`) regardless of `n_samples`.
pub fn outputs_streaming(quick: bool, opts: &StreamOptions) -> StreamReport {
    let s = setup(quick, opts.sample_rate);
    let p_req = s.tag.required_peak_power_watts();
    let mut footprint = Footprint::new();

    // Pass A — calibration: stream sdr→em and take running peaks. The
    // sample stream is deterministic, so pass B simply regenerates it.
    let mut single_meter = PeakMeter::new();
    let mut peak_meter = PeakMeter::new();
    {
        let mut streamer = s.bank.streamer(DRIVE, opts.threads);
        let mut src = ConstSource::new(1.0, s.n_samples);
        let mut profile = Vec::new();
        let mut rx = Vec::new();
        loop {
            profile.clear();
            let got = src.fill(&mut profile, opts.block);
            let done = got == 0;
            if done {
                streamer.flush();
            } else {
                streamer.push(&profile);
            }
            s.superposer.superpose_block(streamer.blocks(), &mut rx);
            single_meter.observe_block(streamer.block(0));
            peak_meter.observe_block(&rx);
            if done {
                break;
            }
        }
    }
    let single_amp = single_meter.peak();
    let peak_amp = peak_meter.peak();

    // harvester calibration: the received level is scaled so the peak
    // sits at POWER_MARGIN × the tag's wake threshold.
    let scale = POWER_MARGIN * p_req / (peak_amp * peak_amp);

    // Pass B — power + hash: regenerate the stream, drive the pump
    // incrementally, and digest every received sample.
    let mut hasher = StreamHasher::new();
    let mut state = s
        .tag
        .begin_power_up(s.sample_rate)
        .with_trace_stride((s.n_samples / 32).max(1));
    let (mut sdr_ns, mut em_ns, mut harv_ns) = (0u128, 0u128, 0u128);
    {
        let mut streamer = s.bank.streamer(DRIVE, opts.threads);
        let mut src = ConstSource::new(1.0, s.n_samples);
        let mut profile = Vec::new();
        let mut rx = Vec::new();
        loop {
            profile.clear();
            let got = src.fill(&mut profile, opts.block);
            let done = got == 0;
            let t0 = Instant::now();
            if done {
                streamer.flush();
            } else {
                streamer.push(&profile);
            }
            let t1 = Instant::now();
            s.superposer.superpose_block(streamer.blocks(), &mut rx);
            let t2 = Instant::now();
            // Harness bookkeeping, not a pipeline stage: the rx digest
            // feeds the streaming-vs-batch verify gate only, so it is
            // excluded from every stage's timing window.
            hasher.update_complex(&rx);
            let t2b = Instant::now();
            // |rx|²·scale fused into the integrator: identical op order
            // to materializing the power vector first (the whole-buffer
            // oracle does exactly that), one less memory pass.
            state.step_rx_block(&rx, scale);
            let t3 = Instant::now();
            sdr_ns += (t1 - t0).as_nanos();
            em_ns += (t2 - t1).as_nanos();
            harv_ns += (t3 - t2b).as_nanos();
            footprint.observe("sdr", streamer.peak_lane_footprint());
            footprint.observe("em", rx.len());
            footprint.observe("harvester", rx.len());
            if done {
                break;
            }
        }
    }
    let outcome = state.finish();

    // rfid: stream-rasterize PIE Query frames and edge-decode them
    // block by block, each followed by an FM0 RN16 uplink — a
    // reader-session population rather than a single 378-sample frame,
    // so the measured MS/s is stable enough to gate in the baseline
    // sentinel. The population is sized to the sample budget of the
    // run (one frame ≈ 634 samples downlink+uplink), every session is
    // the same deterministic round trip, and `downlink_ok`/`uplink_ok`
    // require *all* of them to decode — equal to the batch oracle's
    // single round trip by determinism. The rasterized peak is exactly
    // 1.0 (full-level leading carrier), so the half-amplitude threshold
    // is 0.5 — the same comparisons the whole-buffer decoder makes.
    let bits = query_bits();
    let runs = encode_frame(&bits, &PieParams::paper_defaults(), true);
    let fm0 = Fm0::new(8);
    let wave = fm0.encode(&s.rn16);
    let frame_len = {
        let mut probe = RunRasterizer::new(runs.clone(), RFID_FS, 0.0);
        let mut sink = Vec::new();
        while probe.fill(&mut sink, 4096) > 0 {}
        probe.emitted() + wave.len()
    };
    let sessions = (s.n_samples / frame_len).max(1);
    let (mut downlink_ok, mut uplink_ok) = (true, true);
    let mut rfid_samples = 0usize;
    let t0 = Instant::now();
    for _ in 0..sessions {
        let mut raster = RunRasterizer::new(runs.clone(), RFID_FS, 0.0);
        let mut dec = PieStreamDecoder::new(0.5, RFID_FS);
        let mut frame = Vec::new();
        loop {
            frame.clear();
            if raster.fill(&mut frame, opts.block) == 0 {
                break;
            }
            dec.push(&frame);
            footprint.observe("rfid", frame.len());
        }
        rfid_samples += dec.samples_seen();
        downlink_ok &= dec.finish().map(|d| d == bits).unwrap_or(false);

        let mut up = Fm0Decoder::new(fm0);
        for chunk in wave.chunks(opts.block) {
            up.push(chunk);
        }
        rfid_samples += wave.len();
        uplink_ok &= up.finish() == s.rn16;
    }
    let rfid_ns = t0.elapsed().as_nanos();

    StreamReport {
        outputs: PathOutputs {
            sample_rate: s.sample_rate,
            n_samples: s.n_samples,
            score: s.score,
            single_amp,
            peak_amp,
            outcome,
            downlink_ok,
            uplink_ok,
            rx_hash: hasher.digest(),
        },
        block: opts.block,
        threads: opts.threads,
        footprint: footprint.entries().to_vec(),
        stage_ns: vec![
            ("sdr", sdr_ns, s.n_samples),
            ("em", em_ns, s.n_samples),
            ("harvester", harv_ns, s.n_samples),
            ("rfid", rfid_ns, rfid_samples),
        ],
    }
}

/// Runs the sample path with the original **whole-buffer** driver
/// (O(fs) memory) — kept as the cross-check oracle for the streaming
/// path.
pub fn outputs_batch(quick: bool, sample_rate: Option<f64>) -> PathOutputs {
    let s = setup(quick, sample_rate);
    let profile = vec![1.0; s.n_samples];
    let emissions = s.bank.emit_all(&profile, DRIVE);
    // Calibrate from the running peak of device 0's emission (not just
    // its first sample), so non-constant drive profiles calibrate
    // correctly; identical op order to the streaming PeakMeter.
    let mut single_meter = PeakMeter::new();
    single_meter.observe_block(emissions[0].samples());
    let single_amp = single_meter.peak();

    let rx = s.superposer.superpose_buffers(&emissions);
    let mut hasher = StreamHasher::new();
    hasher.update_complex(rx.samples());
    let env = rx.envelope();
    let (_, peak_amp) = envelope::peak(&env).expect("non-empty envelope");

    let tag = &s.tag;
    let p_req = tag.required_peak_power_watts();
    let scale = POWER_MARGIN * p_req / (peak_amp * peak_amp);
    // |rx|²·scale straight from the complex samples — the identical op
    // order to the streaming driver, so outcomes stay bit-equal.
    let power: Vec<f64> = rx.samples().iter().map(|&v| v.norm_sqr() * scale).collect();
    let outcome = tag.power_up(&power, s.sample_rate);

    let bits = query_bits();
    let frame = rasterize(
        &encode_frame(&bits, &PieParams::paper_defaults(), true),
        RFID_FS,
        0.0,
    );
    let downlink_ok = decode_frame(&frame, RFID_FS)
        .map(|d| d == bits)
        .unwrap_or(false);
    let fm0 = Fm0::new(8);
    let uplink_ok = fm0.decode(&fm0.encode(&s.rn16)) == s.rn16;

    PathOutputs {
        sample_rate: s.sample_rate,
        n_samples: s.n_samples,
        score: s.score,
        single_amp,
        peak_amp,
        outcome,
        downlink_ok,
        uplink_ok,
        rx_hash: hasher.digest(),
    }
}

/// Renders the stage-by-stage summary from computed outputs.
fn render(o: &PathOutputs) -> String {
    let mut out =
        crate::header("PIPELINE — sample-path chain (freqsel → sdr → em → harvester → rfid)");
    let offsets = &PAPER_OFFSETS_HZ[..N_ANTENNAS];
    out += &format!(
        "freqsel    E[Y_peak] of {{{}}} Hz plan: {:.3} (of {} max)\n",
        offsets
            .iter()
            .map(|f| format!("{f:.0}"))
            .collect::<Vec<_>>()
            .join(", "),
        o.score,
        N_ANTENNAS
    );
    out += &format!(
        "sdr        {} devices emitted {} samples each at {:.0} S/s\n",
        N_ANTENNAS, o.n_samples, o.sample_rate
    );
    let cib_gain = o.peak_amp / (0.3 * o.single_amp);
    out += &format!(
        "em         blind channels drawn; envelope peaks at {:.2}x one antenna\n",
        cib_gain
    );
    let p_req = TagPowerProfile::standard_tag().required_peak_power_watts();
    out += &format!(
        "harvester  peak {:.1} µW vs {:.1} µW required: powered={} t={}\n",
        1e6 * POWER_MARGIN * p_req,
        1e6 * p_req,
        o.outcome.powered,
        o.outcome
            .time_to_power_s
            .map(|t| format!("{:.0} ms", 1e3 * t))
            .unwrap_or_else(|| "-".into()),
    );
    out += &format!(
        "rfid       PIE Query round trip: {}; FM0 RN16 round trip: {}\n",
        if o.downlink_ok { "ok" } else { "FAIL" },
        if o.uplink_ok { "ok" } else { "FAIL" },
    );
    out
}

/// Renders the streaming diagnostics block (`--stream-stats`).
fn render_stats(r: &StreamReport) -> String {
    let mut out = format!(
        "stream     block={} threads={} rx_hash={:016x}\n",
        r.block, r.threads, r.outputs.rx_hash
    );
    out += "stream     footprint";
    for &(stage, n) in &r.footprint {
        out += &format!(" {stage}={n}");
    }
    out += " samples (gate: 2x block)\n";
    out += "stream     throughput";
    for &(stage, ns, samples) in &r.stage_ns {
        let msps = if ns > 0 {
            samples as f64 * 1e3 / ns as f64
        } else {
            f64::INFINITY
        };
        out += &format!(" {stage}={msps:.2}");
    }
    out += " MS/s\n";
    out
}

/// Runs the sample-path chain (streaming driver, default options) and
/// renders its stage-by-stage summary.
pub fn run(quick: bool) -> String {
    run_with(quick, &StreamOptions::default())
}

/// [`run`] with explicit streaming options.
pub fn run_with(quick: bool, opts: &StreamOptions) -> String {
    let report = outputs_streaming(quick, opts);
    let mut out = render(&report.outputs);
    if opts.stats {
        out += &render_stats(&report);
    }
    out
}

/// Runs the whole-buffer oracle and renders it, appending its `rx_hash`
/// so `verify.sh` can compare it against the streaming path.
pub fn run_batch(quick: bool, sample_rate: Option<f64>, stats: bool) -> String {
    let o = outputs_batch(quick, sample_rate);
    let mut out = render(&o);
    if stats {
        out += &format!("batch      rx_hash={:016x}\n", o.rx_hash);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_chain_succeeds() {
        let text = run(true);
        assert!(text.contains("powered=true"), "{text}");
        assert!(text.contains("PIE Query round trip: ok"), "{text}");
        assert!(text.contains("FM0 RN16 round trip: ok"), "{text}");
    }

    #[test]
    fn pipeline_is_deterministic() {
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn streaming_equals_batch_at_default_block() {
        let stream = outputs_streaming(true, &StreamOptions::default());
        let batch = outputs_batch(true, None);
        assert_eq!(stream.outputs, batch);
    }
}
