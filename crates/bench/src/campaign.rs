//! The mass-campaign driver: feed a directory of scenario files through
//! the worker pool and aggregate the per-scenario metrics.
//!
//! Scenarios are loaded in filename order and evaluated on the
//! persistent order-preserving [`WorkerPool`], so the campaign's
//! aggregate is bit-identical at any thread count — each scenario's
//! trials draw from its own seed, never from a shared stream — and a
//! mass campaign's thousands of dispatches pay no per-call spawn cost.

use ivn_core::scenario::{evaluate, Scenario, ScenarioMetrics};
use ivn_dsp::stats::{Ecdf, Summary};
use ivn_runtime::json::{Json, ToJson};
use ivn_runtime::pool::WorkerPool;
use std::path::Path;

/// One campaign run: per-scenario outcomes in load order.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Evaluated metrics, one per scenario that ran.
    pub metrics: Vec<ScenarioMetrics>,
    /// Scenarios that failed to evaluate: (name, reason).
    pub errors: Vec<(String, String)>,
}

/// Loads every `*.json` scenario in `dir`, sorted by filename so the
/// campaign order is reproducible across filesystems.
pub fn load_dir(dir: &Path) -> Result<Vec<Scenario>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.json scenarios in {}", dir.display()));
    }
    files
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            Scenario::parse(&text).map_err(|e| format!("{}: {}", p.display(), e.reason))
        })
        .collect()
}

/// Runs every scenario on `threads` workers. Deterministic: the result
/// depends only on the scenario list and the run mode.
///
/// With observability on, progress is visible live: the
/// `campaign.scenarios_total` gauge is set up front and every finished
/// evaluation bumps the `campaign.scenarios_done` counter, which is what
/// the `--live` flight recorder diffs into a scenarios/sec rate.
pub fn run(scenarios: &[Scenario], quick: bool, threads: usize) -> CampaignOutcome {
    ivn_runtime::obs_gauge!("campaign.scenarios_total", scenarios.len());
    // Pool jobs must own their data, so scenarios are cloned in; the
    // clone is parsing-scale cheap next to a scenario evaluation.
    let owned: Vec<Scenario> = scenarios.to_vec();
    let results = WorkerPool::global().map_move(owned, threads, move |_, s| {
        let out = (s.name.clone(), evaluate(&s, quick));
        ivn_runtime::obs_count!("campaign.scenarios_done", 1);
        out
    });
    let mut metrics = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for (name, r) in results {
        match r {
            Ok(m) => metrics.push(m),
            Err(e) => errors.push((name, e)),
        }
    }
    CampaignOutcome { metrics, errors }
}

impl CampaignOutcome {
    /// The campaign aggregate: distributions of per-scenario median gain
    /// and power-up time (`Ecdf` + `Summary`), and summaries of the
    /// powered/decoded fractions.
    pub fn aggregate(&self) -> Json {
        let opt = |s: Option<Summary>| s.map(|v| v.to_json()).unwrap_or(Json::Null);
        let gains: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|m| m.gain_summary().map(|g| g.median))
            .collect();
        let times: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|m| m.time_summary().map(|t| t.median))
            .collect();
        let powered: Vec<f64> = self.metrics.iter().map(|m| m.powered_frac()).collect();
        let decoded: Vec<f64> = self.metrics.iter().map(|m| m.decode_frac()).collect();
        Json::obj([
            ("scenarios", (self.metrics.len() + self.errors.len()).into()),
            ("evaluated", self.metrics.len().into()),
            ("errors", self.errors.len().into()),
            ("gain_db_median", opt(Summary::of(&gains))),
            (
                "gain_db_cdf",
                if gains.is_empty() {
                    Json::Null
                } else {
                    Ecdf::new(gains).to_json()
                },
            ),
            ("time_to_power_s_median", opt(Summary::of(&times))),
            (
                "time_to_power_s_cdf",
                if times.is_empty() {
                    Json::Null
                } else {
                    Ecdf::new(times).to_json()
                },
            ),
            ("powered_frac", opt(Summary::of(&powered))),
            ("decode_frac", opt(Summary::of(&decoded))),
        ])
    }

    /// The full campaign report: aggregate plus per-scenario metrics and
    /// errors, as one JSON document.
    pub fn report(&self) -> Json {
        Json::obj([
            ("aggregate", self.aggregate()),
            (
                "results",
                Json::Arr(self.metrics.iter().map(|m| m.to_json()).collect()),
            ),
            (
                "errors",
                Json::Arr(
                    self.errors
                        .iter()
                        .map(|(name, reason)| {
                            Json::obj([
                                ("name", name.clone().into()),
                                ("error", reason.clone().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A short human-readable summary for stdout.
    pub fn render(&self) -> String {
        let mut out = crate::header(&format!(
            "campaign — {} scenarios ({} errors)",
            self.metrics.len() + self.errors.len(),
            self.errors.len()
        ));
        let gains: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|m| m.gain_summary().map(|g| g.median))
            .collect();
        if let Some(g) = Summary::of(&gains) {
            out += &format!(
                "median gain across scenarios: {:.1} dB [p10 {:.1}, p90 {:.1}]\n",
                g.median, g.p10, g.p90
            );
        }
        let times: Vec<f64> = self
            .metrics
            .iter()
            .filter_map(|m| m.time_summary().map(|t| t.median))
            .collect();
        if let Some(t) = Summary::of(&times) {
            out += &format!(
                "median time-to-power: {:.1} ms [p10 {:.1}, p90 {:.1}]\n",
                t.median * 1e3,
                t.p10 * 1e3,
                t.p90 * 1e3
            );
        }
        let powered: Vec<f64> = self.metrics.iter().map(|m| m.powered_frac()).collect();
        let decoded: Vec<f64> = self.metrics.iter().map(|m| m.decode_frac()).collect();
        if let (Some(p), Some(d)) = (Summary::of(&powered), Summary::of(&decoded)) {
            out += &format!(
                "powered: median {:.0}% of trials; decoded: median {:.0}%\n",
                p.median * 100.0,
                d.median * 100.0
            );
        }
        for (name, reason) in &self.errors {
            out += &format!("error: {name}: {reason}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_core::scenario::builtin;

    fn small_fleet() -> Vec<Scenario> {
        (0..6)
            .map(|i| {
                let mut s = builtin("session").unwrap();
                s.name = format!("s{i:02}");
                s.seed = 100 + i;
                s
            })
            .collect()
    }

    #[test]
    fn thread_count_does_not_change_aggregate() {
        let fleet = small_fleet();
        let a = run(&fleet, true, 1);
        let b = run(&fleet, true, 2);
        let c = run(&fleet, true, 8);
        assert_eq!(a.report().dump(), b.report().dump());
        assert_eq!(b.report().dump(), c.report().dump());
    }

    #[test]
    fn errors_are_collected_not_fatal() {
        let mut fleet = small_fleet();
        fleet[2].placement = ivn_core::scenario::PlacementSpec::MediaBox {
            medium: "mystery-meat".into(),
            depth_m: 0.01,
        };
        let out = run(&fleet, true, 2);
        assert_eq!(out.metrics.len(), 5);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].0, "s02");
        let agg = out.aggregate();
        assert_eq!(agg.get("evaluated"), Some(&Json::Num(5.0)));
        assert_eq!(agg.get("errors"), Some(&Json::Num(1.0)));
    }

    #[test]
    fn load_dir_sorted_and_validated() {
        let dir = std::env::temp_dir().join("ivn-campaign-loadtest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fleet = small_fleet();
        // Write out of order; load must come back sorted by filename.
        for (i, s) in fleet.iter().enumerate().rev() {
            std::fs::write(dir.join(format!("{:03}.json", i)), s.dump()).unwrap();
        }
        std::fs::write(dir.join("README.txt"), "not a scenario").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), fleet.len());
        for (l, s) in loaded.iter().zip(&fleet) {
            assert_eq!(l.name, s.name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
