//! Fig. 4 — impact of the threshold effect: conduction angle in three
//! placements (air-close, shallow tissue, deep tissue).

use ivn_core::body::{Placement, TagSpec, PAPER_EIRP_DBM};
use ivn_em::medium::Medium;
use ivn_harvester::conduction::{classify, conduction_angle, conduction_duty, OperatingRegime};

/// Regenerates Fig. 4: carrier amplitude at the rectifier, conduction
/// angle and operating regime for the paper's three placements.
pub fn run(_quick: bool) -> String {
    let tag = TagSpec::standard();
    let eirp = ivn_dsp::units::dbm_to_watts(PAPER_EIRP_DBM);
    let vth = tag.power.rectifier.input_threshold();
    let cases = [
        ("(a) air, 1 m from source", Placement::free_space(1.0)),
        (
            "(b) shallow tissue (5.5 cm muscle)",
            Placement::media_box(Medium::muscle(), 0.055),
        ),
        (
            "(c) deep tissue (9 cm muscle)",
            Placement::media_box(Medium::muscle(), 0.09),
        ),
    ];
    let mut out = crate::header("Fig. 4 — threshold effect across placements (single antenna)");
    out += &format!(
        "{:<36}  {:>10}  {:>10}  {:>10}  {:>10}\n",
        "placement", "Vs (mV)", "ω (rad)", "duty", "regime"
    );
    for (label, placement) in cases {
        let p = placement.nominal_rx_power(&tag, eirp, 915e6);
        let vs = tag.power.input_amplitude(p);
        let omega = conduction_angle(vs, vth);
        let duty = conduction_duty(vs, vth);
        let regime = match classify(vs, vth) {
            OperatingRegime::Strong => "strong",
            OperatingRegime::Marginal => "marginal",
            OperatingRegime::Dead => "dead",
        };
        out += &format!(
            "{:<36}  {:>10.1}  {:>10.3}  {:>10.3}  {:>10}\n",
            label,
            vs * 1e3,
            omega,
            duty,
            regime
        );
    }
    out += &format!("\ndiode threshold: {:.0} mV\n", vth * 1e3);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_three_regimes() {
        let s = super::run(true);
        assert!(s.contains("strong"), "{s}");
        assert!(s.contains("marginal"), "{s}");
        assert!(s.contains("dead"), "{s}");
    }
}
