//! `reproduce` — regenerates every table and figure of the IVN paper,
//! and runs declarative scenarios: every target is a named built-in
//! [`ivn_core::scenario::Scenario`] resolved through the bench registry,
//! and arbitrary scenario files run through the same door.
//!
//! ```text
//! reproduce <target> [--quick] [--obs] [--obs-json <path>] [--trace <path>]
//!
//! targets:
//!   fig2    diode I-V curves (ideal vs threshold)
//!   fig3    signal loss in tissue vs air
//!   fig4    conduction angle across placements
//!   fig6    CDF of 5-antenna gain, best vs worst frequency set
//!   fig9    gain vs number of antennas
//!   fig10   gain stability vs depth and orientation
//!   fig11   gain across media (CIB vs baseline)
//!   fig12   CDF of CIB/baseline power ratio
//!   fig13   range vs antennas (both tags, air and water)
//!   invivo  swine campaign (§6.2 / Fig. 15)
//!   freqs   frequency-plan optimization (§5)
//!   ablations   design-choice ablations
//!   pipeline    end-to-end sample-path chain (all five crates)
//!   session     one power-up + downlink session (metrics report)
//!   multisensor Gen2 arbitration over a sensor population
//!   all     the thirteen figure targets above in order
//!
//! scenario subcommands:
//!   reproduce --scenario <file.json> [--quick]   run a scenario file
//!   reproduce list                               list built-in scenarios
//!   reproduce export <name> [--out <path>]       dump a built-in as JSON
//!   reproduce generate --out <dir> [--base <name|file>] [--count N]
//!             [--seed S] [--sweep path=v1,v2,..]... [--jitter path=frac]...
//!   reproduce campaign <dir> [--quick] [--threads N] [--out <file>]
//!             [--live <file.ndjson>] [--live-interval-ms <n>]
//! ```
//!
//! `--live <file>` attaches the `ivn_runtime::telemetry` flight recorder
//! to a campaign: periodic NDJSON heartbeats (counter deltas, derived
//! rates, pool gauges) stream to `file` while the campaign runs, and a
//! progress line (scenarios done, scenarios/sec, ETA) goes to stderr on
//! every heartbeat. Stdout bytes are identical with or without `--live`.
//!
//! `--obs` enables the `ivn_runtime::obs` observability layer for the run
//! and appends the rendered metric report (span timings, per-crate
//! counters) after the figure output; `--obs-json <path>` additionally (or
//! instead) writes the report as JSON to `path`, keeping stdout text-only.
//! `--trace <path>` records a timeline with `ivn_runtime::trace` and
//! writes Chrome Trace Event JSON to `path` — open it in Perfetto /
//! `chrome://tracing`, or feed it to the `trace_report` binary.
//! Instrumentation never changes figure bytes — `tests/determinism.rs`
//! pins that.

use ivn_bench::{campaign, registry};
use ivn_core::scenario::{gen, Scenario};
use ivn_runtime::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALL_TARGETS: [&str; 13] = [
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "invivo",
    "freqs",
    "ablations",
    "pipeline",
];

const USAGE: &str = "usage: reproduce <target|all> [--quick] [--obs] [--obs-json <path>] [--trace <path>] [--sample-rate <hz>] [--block <n>] [--batch] [--stream-stats]
       reproduce --scenario <file.json> [--quick]
       reproduce list
       reproduce export <name> [--out <path>]
       reproduce generate --out <dir> [--base <name|file>] [--count <n>] [--seed <s>] [--sweep <path=v1,v2,..>]... [--jitter <path=frac>]...
       reproduce campaign <dir> [--quick] [--threads <n>] [--out <file>] [--live <file.ndjson>] [--live-interval-ms <n>]";

struct Args {
    target: Option<String>,
    quick: bool,
    with_obs: bool,
    obs_json: Option<String>,
    trace_path: Option<String>,
    /// Run a scenario file instead of a named target.
    scenario: Option<String>,
    /// Shared output path (export/generate/campaign).
    out: Option<String>,
    /// generate: base scenario (built-in name or file path).
    base: Option<String>,
    /// generate: number of scenarios (0 = one per grid point).
    count: usize,
    /// generate: jitter seed.
    seed: u64,
    /// generate: sweep axes as `path=v1,v2,..`.
    sweeps: Vec<String>,
    /// generate: jitters as `path=frac`.
    jitters: Vec<String>,
    /// campaign: worker threads (0 = auto).
    threads: usize,
    /// campaign: flight-recorder NDJSON sink.
    live: Option<String>,
    /// campaign: heartbeat interval in milliseconds.
    live_interval_ms: u64,
    /// Pipeline-only: override the sample rate (e.g. 1e6 for 1 MS/s).
    sample_rate: Option<f64>,
    /// Pipeline-only: streaming block size.
    block: Option<usize>,
    /// Pipeline-only: run the whole-buffer oracle instead of streaming.
    batch: bool,
    /// Pipeline-only: append footprint/throughput/hash diagnostics.
    stream_stats: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        target: None,
        quick: false,
        with_obs: false,
        obs_json: None,
        trace_path: None,
        scenario: None,
        out: None,
        base: None,
        count: 0,
        seed: 0,
        sweeps: Vec::new(),
        jitters: Vec::new(),
        threads: 0,
        live: None,
        live_interval_ms: 200,
        sample_rate: None,
        block: None,
        batch: false,
        stream_stats: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => args.quick = true,
            "--obs" => args.with_obs = true,
            "--obs-json" => {
                let path = it.next().ok_or("--obs-json needs a path")?;
                args.obs_json = Some(path.clone());
            }
            "--trace" => {
                let path = it.next().ok_or("--trace needs a path")?;
                args.trace_path = Some(path.clone());
            }
            "--scenario" => {
                let path = it.next().ok_or("--scenario needs a file path")?;
                args.scenario = Some(path.clone());
            }
            "--out" => {
                let path = it.next().ok_or("--out needs a path")?;
                args.out = Some(path.clone());
            }
            "--base" => {
                let b = it.next().ok_or("--base needs a name or file path")?;
                args.base = Some(b.clone());
            }
            "--count" => {
                let v = it.next().ok_or("--count needs a number")?;
                args.count = v.parse().map_err(|_| format!("bad --count '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            "--sweep" => {
                let v = it.next().ok_or("--sweep needs path=v1,v2,..")?;
                args.sweeps.push(v.clone());
            }
            "--jitter" => {
                let v = it.next().ok_or("--jitter needs path=frac")?;
                args.jitters.push(v.clone());
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                args.threads = v.parse().map_err(|_| format!("bad --threads '{v}'"))?;
            }
            "--live" => {
                let path = it.next().ok_or("--live needs a file path")?;
                args.live = Some(path.clone());
            }
            "--live-interval-ms" => {
                let v = it.next().ok_or("--live-interval-ms needs a number")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --live-interval-ms '{v}'"))?;
                if ms == 0 {
                    return Err("--live-interval-ms must be positive".into());
                }
                args.live_interval_ms = ms;
            }
            "--sample-rate" => {
                let v = it.next().ok_or("--sample-rate needs a value in Hz")?;
                let hz: f64 = v.parse().map_err(|_| format!("bad --sample-rate '{v}'"))?;
                if !(hz > 0.0) {
                    return Err(format!("--sample-rate must be positive, got '{v}'"));
                }
                args.sample_rate = Some(hz);
            }
            "--block" => {
                let v = it.next().ok_or("--block needs a sample count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --block '{v}'"))?;
                if n == 0 {
                    return Err("--block must be positive".into());
                }
                args.block = Some(n);
            }
            "--batch" => args.batch = true,
            "--stream-stats" => args.stream_stats = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            word => {
                // First positional is the target/subcommand; export and
                // campaign take one operand each.
                match args.target.as_deref() {
                    None => args.target = Some(word.to_string()),
                    Some("export") | Some("campaign") if args.base.is_none() => {
                        args.base = Some(word.to_string())
                    }
                    _ => return Err(format!("unexpected extra argument '{word}'")),
                }
            }
        }
    }
    Ok(args)
}

/// Loads a scenario from a built-in name or a JSON file path.
fn load_base(spec: &str) -> Result<Scenario, String> {
    if let Some(s) = registry::builtin(spec) {
        return Ok(s);
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| format!("'{spec}' is not a built-in scenario and not readable: {e}"))?;
    Scenario::parse(&text).map_err(|e| format!("{spec}: {}", e.reason))
}

/// Parses one `path=v1,v2,..` sweep axis; each value is JSON if it
/// parses, a bare string otherwise.
fn parse_sweep(arg: &str) -> Result<gen::SweepAxis, String> {
    let (path, vals) = arg
        .split_once('=')
        .ok_or_else(|| format!("--sweep '{arg}' is not path=v1,v2,.."))?;
    let values: Vec<Json> = vals
        .split(',')
        .map(|v| Json::parse(v).unwrap_or_else(|_| Json::Str(v.to_string())))
        .collect();
    if values.is_empty() {
        return Err(format!("--sweep '{arg}' has no values"));
    }
    Ok(gen::SweepAxis {
        path: path.to_string(),
        values,
    })
}

/// Parses one `path=frac` jitter spec.
fn parse_jitter(arg: &str) -> Result<gen::JitterSpec, String> {
    let (path, frac) = arg
        .split_once('=')
        .ok_or_else(|| format!("--jitter '{arg}' is not path=frac"))?;
    let frac: f64 = frac
        .parse()
        .map_err(|_| format!("--jitter '{arg}': bad fraction"))?;
    Ok(gen::JitterSpec {
        path: path.to_string(),
        frac,
    })
}

fn cmd_list() -> ExitCode {
    println!("{:<14}  {:<18}  {}", "name", "kind", "description");
    for name in registry::builtin_names() {
        let s = registry::builtin(name).expect("registered builtin");
        println!("{:<14}  {:<18}  seed {}", name, s.kind.type_name(), s.seed);
    }
    ExitCode::SUCCESS
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let name = args
        .base
        .as_deref()
        .ok_or("export needs a built-in scenario name")?;
    let s = registry::builtin(name).ok_or_else(|| {
        format!(
            "unknown scenario '{name}' (try: {})",
            registry::builtin_names().join(", ")
        )
    })?;
    let doc = s.dump() + "\n";
    match &args.out {
        Some(path) => {
            std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {name} to {path}");
        }
        None => print!("{doc}"),
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.out.as_deref().ok_or("generate needs --out <dir>")?;
    let base = load_base(args.base.as_deref().unwrap_or("session"))?;
    let spec = gen::GenSpec {
        base,
        count: args.count,
        seed: args.seed,
        sweeps: args
            .sweeps
            .iter()
            .map(|s| parse_sweep(s))
            .collect::<Result<_, _>>()?,
        jitters: args
            .jitters
            .iter()
            .map(|j| parse_jitter(j))
            .collect::<Result<_, _>>()?,
    };
    let scenarios = gen::generate(&spec)?;
    let dir = PathBuf::from(out);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    for s in &scenarios {
        let path = dir.join(format!("{}.json", s.name));
        std::fs::write(&path, s.dump() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!("generated {} scenarios in {out}", scenarios.len());
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let dir = args.base.as_deref().ok_or("campaign needs a directory")?;
    let scenarios = campaign::load_dir(Path::new(dir))?;
    let threads = if args.threads == 0 {
        ivn_runtime::par::num_threads()
    } else {
        args.threads
    };

    // `--live` attaches the flight recorder: metrics on, heartbeats to
    // the NDJSON sink, progress to stderr. Stdout is untouched either
    // way, so campaign output stays byte-identical without the flag.
    let recorder = match &args.live {
        Some(path) => {
            ivn_runtime::obs::set_enabled(true);
            ivn_runtime::obs::reset();
            let sink = std::fs::File::create(path)
                .map_err(|e| format!("cannot create live sink {path}: {e}"))?;
            let total = scenarios.len();
            Some(ivn_runtime::telemetry::start_with(
                std::time::Duration::from_millis(args.live_interval_ms),
                sink,
                move |snap| {
                    let done = snap
                        .totals
                        .counter("campaign.scenarios_done")
                        .unwrap_or(0)
                        .min(total as u64);
                    let rate = snap.rate("campaign.scenarios_done").unwrap_or(0.0);
                    let eta = if rate > 0.0 && done < total as u64 {
                        format!("{:.1}s", (total as u64 - done) as f64 / rate)
                    } else {
                        "-".to_string()
                    };
                    eprintln!(
                        "live[{}] {done}/{total} scenarios, {rate:.1}/s, eta {eta}",
                        snap.seq
                    );
                },
            ))
        }
        None => None,
    };

    let outcome = campaign::run(&scenarios, args.quick, threads);

    if let Some(rec) = recorder {
        rec.stop()
            .map_err(|e| format!("flight recorder sink error: {e}"))?;
        ivn_runtime::obs::set_enabled(false);
        if let Some(path) = &args.live {
            eprintln!("wrote live telemetry to {path}");
        }
    }

    print!("{}", outcome.render());
    if let Some(path) = &args.out {
        std::fs::write(path, outcome.report().dump() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote campaign report to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reproduce: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |e: String| -> ExitCode {
        eprintln!("reproduce: {e}");
        ExitCode::FAILURE
    };

    // Scenario subcommands (no obs/trace plumbing — they are drivers,
    // not figure renders).
    match args.target.as_deref() {
        Some("list") => return cmd_list(),
        Some("export") => {
            return match cmd_export(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        Some("generate") => {
            return match cmd_generate(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        Some("campaign") => {
            return match cmd_campaign(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(e),
            }
        }
        _ => {}
    }

    let Some(target) = args.target.clone().or_else(|| {
        // `--scenario file.json` with no positional target.
        args.scenario.as_ref().map(|_| "--scenario".to_string())
    }) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let quick = args.quick;

    // --obs-json implies collecting metrics even without --obs.
    if args.with_obs || args.obs_json.is_some() {
        ivn_runtime::obs::set_enabled(true);
    }
    if args.trace_path.is_some() {
        ivn_runtime::trace::set_enabled(true);
    }

    let finish = || -> ExitCode {
        if args.with_obs || args.obs_json.is_some() {
            let report = ivn_runtime::obs::report();
            if let Some(path) = &args.obs_json {
                use ivn_runtime::json::ToJson;
                if let Err(e) = std::fs::write(path, report.to_json().dump() + "\n") {
                    eprintln!("reproduce: cannot write obs report to {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote obs report to {path}");
            }
            if args.with_obs {
                println!("\n── observability report ──");
                print!("{}", report.render());
            }
        }
        if let Some(path) = &args.trace_path {
            ivn_runtime::trace::set_enabled(false);
            let trace = ivn_runtime::trace::snapshot();
            let doc = trace.to_chrome_json();
            if let Err(e) = std::fs::write(path, doc.dump() + "\n") {
                eprintln!("reproduce: cannot write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote trace to {path} ({} events{}) — open in Perfetto or run trace_report",
                trace.events.len(),
                if trace.dropped > 0 {
                    format!(", {} dropped to ring wraparound", trace.dropped)
                } else {
                    String::new()
                }
            );
        }
        ExitCode::SUCCESS
    };

    // The pipeline target keeps its streaming knobs outside the scenario
    // substrate; everything else resolves through the registry.
    let render = |name: &str| -> Option<Result<String, String>> {
        if name == "pipeline" {
            return Some(Ok(if args.batch {
                ivn_bench::pipeline::run_batch(quick, args.sample_rate, args.stream_stats)
            } else {
                let mut opts = ivn_bench::pipeline::StreamOptions {
                    sample_rate: args.sample_rate,
                    stats: args.stream_stats,
                    ..Default::default()
                };
                if let Some(b) = args.block {
                    opts.block = b;
                }
                ivn_bench::pipeline::run_with(quick, &opts)
            }));
        }
        let s = registry::builtin(name)?;
        Some(registry::render(&s, quick))
    };

    if let Some(path) = &args.scenario {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot read {path}: {e}")),
        };
        let s = match Scenario::parse(&text) {
            Ok(s) => s,
            Err(e) => return fail(format!("{path}: {}", e.reason)),
        };
        return match registry::render(&s, quick) {
            Ok(out) => {
                print!("{out}");
                finish()
            }
            Err(e) => fail(format!("{path}: {e}")),
        };
    }

    if target == "all" {
        for name in ALL_TARGETS {
            match render(name).expect("known target") {
                Ok(s) => print!("{s}"),
                Err(e) => return fail(format!("{name}: {e}")),
            }
        }
        return finish();
    }

    match render(&target) {
        Some(Ok(s)) => {
            print!("{s}");
            finish()
        }
        Some(Err(e)) => fail(format!("{target}: {e}")),
        None => {
            eprintln!("unknown target '{target}'\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
