//! `reproduce` — regenerates every table and figure of the IVN paper.
//!
//! ```text
//! reproduce <target> [--quick] [--obs]
//!
//! targets:
//!   fig2    diode I-V curves (ideal vs threshold)
//!   fig3    signal loss in tissue vs air
//!   fig4    conduction angle across placements
//!   fig6    CDF of 5-antenna gain, best vs worst frequency set
//!   fig9    gain vs number of antennas
//!   fig10   gain stability vs depth and orientation
//!   fig11   gain across media (CIB vs baseline)
//!   fig12   CDF of CIB/baseline power ratio
//!   fig13   range vs antennas (both tags, air and water)
//!   invivo  swine campaign (§6.2 / Fig. 15)
//!   freqs   frequency-plan optimization (§5)
//!   ablations   design-choice ablations
//!   all     everything above in order
//! ```
//!
//! `--obs` enables the `ivn_runtime::obs` observability layer for the
//! run and appends the metric report (span timings, per-crate counters)
//! after the figure output. Observability never changes figure bytes —
//! `tests/determinism.rs` pins that.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let with_obs = args.iter().any(|a| a == "--obs");
    let target = args.iter().find(|a| !a.starts_with('-')).cloned();

    let Some(target) = target else {
        eprintln!("usage: reproduce <fig2|fig3|fig4|fig6|fig9|fig10|fig11|fig12|fig13|invivo|freqs|ablations|all> [--quick] [--obs]");
        return ExitCode::FAILURE;
    };

    if with_obs {
        ivn_runtime::obs::set_enabled(true);
    }
    let print_obs_report = || {
        if with_obs {
            println!("\n── observability report ──");
            print!("{}", ivn_runtime::obs::report().render());
        }
    };

    let render = |name: &str| -> Option<String> {
        Some(match name {
            "fig2" => ivn_bench::fig02_diode::run(quick),
            "fig3" => ivn_bench::fig03_tissue_loss::run(quick),
            "fig4" => ivn_bench::fig04_conduction::run(quick),
            "fig6" => ivn_bench::fig06_freq_cdf::run(quick),
            "fig9" => ivn_bench::fig09_gain_vs_antennas::run(quick),
            "fig10" => ivn_bench::fig10_gain_stability::run(quick),
            "fig11" => ivn_bench::fig11_media::run(quick),
            "fig12" => ivn_bench::fig12_ratio_cdf::run(quick),
            "fig13" => ivn_bench::fig13_range::run(quick),
            "invivo" => ivn_bench::fig15_invivo::run(quick),
            "freqs" => ivn_bench::tbl_freqs::run(quick),
            "ablations" => ivn_bench::ablations::run(quick),
            _ => return None,
        })
    };

    if target == "all" {
        for name in [
            "fig2",
            "fig3",
            "fig4",
            "fig6",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "invivo",
            "freqs",
            "ablations",
        ] {
            print!("{}", render(name).expect("known target"));
        }
        print_obs_report();
        return ExitCode::SUCCESS;
    }

    match render(&target) {
        Some(s) => {
            print!("{s}");
            print_obs_report();
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown target '{target}'");
            ExitCode::FAILURE
        }
    }
}
