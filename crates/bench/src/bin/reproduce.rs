//! `reproduce` — regenerates every table and figure of the IVN paper.
//!
//! ```text
//! reproduce <target> [--quick] [--obs] [--obs-json <path>] [--trace <path>]
//!
//! targets:
//!   fig2    diode I-V curves (ideal vs threshold)
//!   fig3    signal loss in tissue vs air
//!   fig4    conduction angle across placements
//!   fig6    CDF of 5-antenna gain, best vs worst frequency set
//!   fig9    gain vs number of antennas
//!   fig10   gain stability vs depth and orientation
//!   fig11   gain across media (CIB vs baseline)
//!   fig12   CDF of CIB/baseline power ratio
//!   fig13   range vs antennas (both tags, air and water)
//!   invivo  swine campaign (§6.2 / Fig. 15)
//!   freqs   frequency-plan optimization (§5)
//!   ablations   design-choice ablations
//!   pipeline    end-to-end sample-path chain (all five crates)
//!   all     everything above in order
//! ```
//!
//! `--obs` enables the `ivn_runtime::obs` observability layer for the run
//! and appends the rendered metric report (span timings, per-crate
//! counters) after the figure output; `--obs-json <path>` additionally (or
//! instead) writes the report as JSON to `path`, keeping stdout text-only.
//! `--trace <path>` records a timeline with `ivn_runtime::trace` and
//! writes Chrome Trace Event JSON to `path` — open it in Perfetto /
//! `chrome://tracing`, or feed it to the `trace_report` binary.
//! Instrumentation never changes figure bytes — `tests/determinism.rs`
//! pins that.

use std::process::ExitCode;

const ALL_TARGETS: [&str; 13] = [
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "invivo",
    "freqs",
    "ablations",
    "pipeline",
];

const USAGE: &str = "usage: reproduce <fig2|fig3|fig4|fig6|fig9|fig10|fig11|fig12|fig13|invivo|freqs|ablations|pipeline|all> [--quick] [--obs] [--obs-json <path>] [--trace <path>] [--sample-rate <hz>] [--block <n>] [--batch] [--stream-stats]";

struct Args {
    target: Option<String>,
    quick: bool,
    with_obs: bool,
    obs_json: Option<String>,
    trace_path: Option<String>,
    /// Pipeline-only: override the sample rate (e.g. 1e6 for 1 MS/s).
    sample_rate: Option<f64>,
    /// Pipeline-only: streaming block size.
    block: Option<usize>,
    /// Pipeline-only: run the whole-buffer oracle instead of streaming.
    batch: bool,
    /// Pipeline-only: append footprint/throughput/hash diagnostics.
    stream_stats: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        target: None,
        quick: false,
        with_obs: false,
        obs_json: None,
        trace_path: None,
        sample_rate: None,
        block: None,
        batch: false,
        stream_stats: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => args.quick = true,
            "--obs" => args.with_obs = true,
            "--obs-json" => {
                let path = it.next().ok_or("--obs-json needs a path")?;
                args.obs_json = Some(path.clone());
            }
            "--trace" => {
                let path = it.next().ok_or("--trace needs a path")?;
                args.trace_path = Some(path.clone());
            }
            "--sample-rate" => {
                let v = it.next().ok_or("--sample-rate needs a value in Hz")?;
                let hz: f64 = v.parse().map_err(|_| format!("bad --sample-rate '{v}'"))?;
                if !(hz > 0.0) {
                    return Err(format!("--sample-rate must be positive, got '{v}'"));
                }
                args.sample_rate = Some(hz);
            }
            "--block" => {
                let v = it.next().ok_or("--block needs a sample count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --block '{v}'"))?;
                if n == 0 {
                    return Err("--block must be positive".into());
                }
                args.block = Some(n);
            }
            "--batch" => args.batch = true,
            "--stream-stats" => args.stream_stats = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            target => {
                if args.target.is_some() {
                    return Err(format!("unexpected extra target '{target}'"));
                }
                args.target = Some(target.to_string());
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reproduce: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let Some(target) = args.target else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let quick = args.quick;

    // --obs-json implies collecting metrics even without --obs.
    if args.with_obs || args.obs_json.is_some() {
        ivn_runtime::obs::set_enabled(true);
    }
    if args.trace_path.is_some() {
        ivn_runtime::trace::set_enabled(true);
    }

    let finish = || -> ExitCode {
        if args.with_obs || args.obs_json.is_some() {
            let report = ivn_runtime::obs::report();
            if let Some(path) = &args.obs_json {
                use ivn_runtime::json::ToJson;
                if let Err(e) = std::fs::write(path, report.to_json().dump() + "\n") {
                    eprintln!("reproduce: cannot write obs report to {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote obs report to {path}");
            }
            if args.with_obs {
                println!("\n── observability report ──");
                print!("{}", report.render());
            }
        }
        if let Some(path) = &args.trace_path {
            ivn_runtime::trace::set_enabled(false);
            let trace = ivn_runtime::trace::snapshot();
            let doc = trace.to_chrome_json();
            if let Err(e) = std::fs::write(path, doc.dump() + "\n") {
                eprintln!("reproduce: cannot write trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote trace to {path} ({} events{}) — open in Perfetto or run trace_report",
                trace.events.len(),
                if trace.dropped > 0 {
                    format!(", {} dropped to ring wraparound", trace.dropped)
                } else {
                    String::new()
                }
            );
        }
        ExitCode::SUCCESS
    };

    let render = |name: &str| -> Option<String> {
        Some(match name {
            "fig2" => ivn_bench::fig02_diode::run(quick),
            "fig3" => ivn_bench::fig03_tissue_loss::run(quick),
            "fig4" => ivn_bench::fig04_conduction::run(quick),
            "fig6" => ivn_bench::fig06_freq_cdf::run(quick),
            "fig9" => ivn_bench::fig09_gain_vs_antennas::run(quick),
            "fig10" => ivn_bench::fig10_gain_stability::run(quick),
            "fig11" => ivn_bench::fig11_media::run(quick),
            "fig12" => ivn_bench::fig12_ratio_cdf::run(quick),
            "fig13" => ivn_bench::fig13_range::run(quick),
            "invivo" => ivn_bench::fig15_invivo::run(quick),
            "freqs" => ivn_bench::tbl_freqs::run(quick),
            "ablations" => ivn_bench::ablations::run(quick),
            "pipeline" => {
                if args.batch {
                    ivn_bench::pipeline::run_batch(quick, args.sample_rate, args.stream_stats)
                } else {
                    let mut opts = ivn_bench::pipeline::StreamOptions {
                        sample_rate: args.sample_rate,
                        stats: args.stream_stats,
                        ..Default::default()
                    };
                    if let Some(b) = args.block {
                        opts.block = b;
                    }
                    ivn_bench::pipeline::run_with(quick, &opts)
                }
            }
            _ => return None,
        })
    };

    if target == "all" {
        for name in ALL_TARGETS {
            print!("{}", render(name).expect("known target"));
        }
        return finish();
    }

    match render(&target) {
        Some(s) => {
            print!("{s}");
            finish()
        }
        None => {
            eprintln!("unknown target '{target}'\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
