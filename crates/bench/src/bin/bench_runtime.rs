//! Runtime-layer benchmark: serial vs parallel Monte-Carlo wall-clock.
//!
//! Times `peak_gain_cdf` on one worker thread against the machine's full
//! worker-pool width, verifies the two produce bit-identical results, and
//! writes `BENCH_runtime.json` (machine-readable, via the in-tree JSON
//! layer) to the current directory.
//!
//! Set `IVN_BENCH_FAST=1` for a quick smoke run.

use ivn_core::experiment::peak_gain_cdf_threads;
use ivn_core::PAPER_OFFSETS_HZ;
use ivn_runtime::bench::{black_box, Bench};
use ivn_runtime::json::Json;
use ivn_runtime::par;

const SEED: u64 = 42;
const GRID: usize = 1024;

fn main() {
    let fast = std::env::var("IVN_BENCH_FAST").is_ok_and(|v| v == "1");
    let trials = if fast { 64 } else { 400 };
    let threads = par::num_threads();
    let offsets = &PAPER_OFFSETS_HZ[..5];

    // The parallel path must change only how fast the answer arrives.
    let serial = peak_gain_cdf_threads(offsets, trials, GRID, SEED, 1);
    let parallel = peak_gain_cdf_threads(offsets, trials, GRID, SEED, threads);
    assert_eq!(
        serial, parallel,
        "parallel peak_gain_cdf diverged from serial"
    );

    let mut b = Bench::new();
    let serial_ns = b
        .bench("peak_gain_cdf/serial", || {
            black_box(peak_gain_cdf_threads(offsets, trials, GRID, SEED, 1))
        })
        .median_ns;
    let parallel_ns = b
        .bench(&format!("peak_gain_cdf/parallel_x{threads}"), || {
            black_box(peak_gain_cdf_threads(offsets, trials, GRID, SEED, threads))
        })
        .median_ns;
    let speedup = serial_ns / parallel_ns;
    println!("worker threads: {threads}, speedup: {speedup:.2}x");

    let doc = Json::obj([
        ("bench", "peak_gain_cdf".into()),
        ("offsets", offsets.to_vec().into()),
        ("trials", trials.into()),
        ("grid", GRID.into()),
        ("seed", (SEED as f64).into()),
        ("worker_threads", threads.into()),
        ("serial_median_ns", serial_ns.into()),
        ("parallel_median_ns", parallel_ns.into()),
        ("speedup", speedup.into()),
        ("results", b.to_json()),
    ]);
    std::fs::write("BENCH_runtime.json", doc.dump() + "\n").expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");
}
