//! Runtime-layer benchmark: serial vs parallel Monte-Carlo wall-clock,
//! plus a per-stage breakdown of the pipeline.
//!
//! Sweeps `peak_gain_cdf` across worker-pool widths 1/2/4/8, verifies
//! every width produces bit-identical results, records per-width
//! speedups (`"parallel_sweep"` in the JSON), times one representative
//! workload per pipeline stage (sdr, em, harvester, rfid, freqsel) and
//! per envelope kernel (fill_direct, fill_fft, swap_eval, climb), and
//! writes `BENCH_runtime.json` (machine-readable, via the in-tree JSON
//! layer) to the current directory.
//!
//! With `--obs`, observability (`ivn_runtime::obs`) is enabled for the
//! stage runs and the resulting metric `Report` is embedded in the JSON
//! under `"obs_report"` — counters and span histograms from inside every
//! instrumented crate. With `--trace <path>`, a `ivn_runtime::trace`
//! timeline of the stage runs is exported as Chrome Trace Event JSON.
//!
//! The instrumentation *overhead* is always measured: the `peak_gain_cdf`
//! workload runs with everything off, with obs on, and with obs+trace on,
//! and the deltas land in the JSON as `obs_overhead_pct` /
//! `trace_overhead_pct` — the data behind the "one relaxed load when
//! disabled, negligible when enabled" contract.
//!
//! Two early-exit check modes turn the binary into a verify gate
//! without re-running the benches: `--check-baseline [--baseline <p>]
//! [--bench <p>]` evaluates an existing BENCH_runtime.json against the
//! committed BENCH_baseline.json tolerance bands (the perf-regression
//! sentinel), and `--check-ndjson <path>` validates a flight-recorder
//! NDJSON stream (gapless seq, monotone clock, ≥3 heartbeats).
//!
//! Set `IVN_BENCH_FAST=1` for a quick smoke run.

use ivn_bench::sentinel;
use ivn_core::experiment::peak_gain_cdf_threads;
use ivn_core::PAPER_OFFSETS_HZ;
use ivn_runtime::bench::{black_box, Bench};
use ivn_runtime::json::{Json, ToJson};
use ivn_runtime::obs;
use ivn_runtime::par;
use ivn_runtime::rng::StdRng;
use ivn_runtime::telemetry;
use ivn_runtime::trace;

const SEED: u64 = 42;
const GRID: usize = 1024;

/// Worker-pool widths the parallel sweep measures. The pool spawns
/// exactly the requested count regardless of the machine's core count,
/// so oversubscribed widths still produce honest (if flat) speedups.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A confidence-aware overhead estimate: the median paired relative
/// delta plus a 95% confidence interval on that median.
struct OverheadEstimate {
    /// Median of the per-round relative deltas, percent.
    pct: f64,
    /// 95% CI bounds on the median, percent.
    ci_lo: f64,
    ci_hi: f64,
}

/// Median and a distribution-free 95% CI for the median via order
/// statistics: ranks `n/2 ± 1.96·√n/2` of the sorted samples.
fn median_ci95(samples: &mut [f64]) -> OverheadEstimate {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    assert!(n >= 8, "too few rounds for a CI");
    let pct = if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    };
    let half = 1.96 * (n as f64).sqrt() / 2.0;
    let lo = ((n as f64 / 2.0 - half).floor().max(0.0)) as usize;
    let hi = ((n as f64 / 2.0 + half).ceil() as usize).min(n - 1);
    OverheadEstimate {
        pct,
        ci_lo: samples[lo],
        ci_hi: samples[hi],
    }
}

/// Overhead of turning instrumentation on, as a percentage of the
/// baseline `peak_gain_cdf` wall-clock with everything off.
///
/// Each round times the three configurations (off, obs on, obs+trace
/// on) back to back and records the two *paired relative deltas* for
/// that round: scheduling noise and thermal drift hit the adjacent runs
/// alike and cancel inside a pair instead of biasing the estimate.
/// (The previous min-of-mins scheme could — and did — report negative
/// overhead: the minimum of 200 noisy "on" samples can undercut the
/// minimum of 200 noisy "off" samples even when "on" is truly slower.)
/// The reported figure is the median paired delta with a 95% CI on the
/// median; verify.sh gates the *upper* CI bound, so the <2% check
/// cannot pass on noise alone.
fn measure_overhead(offsets: &[f64]) -> (OverheadEstimate, OverheadEstimate) {
    const ROUNDS: usize = 200;
    let run = || black_box(peak_gain_cdf_threads(offsets, 16, GRID, SEED, 1));
    let time_one = || {
        let t0 = std::time::Instant::now();
        run();
        t0.elapsed().as_nanos() as f64
    };
    run(); // warm-up
    let mut obs_deltas = Vec::with_capacity(ROUNDS);
    let mut trace_deltas = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        obs::set_enabled(false);
        trace::set_enabled(false);
        let off = time_one();
        obs::set_enabled(true);
        let obs_on = time_one();
        trace::set_enabled(true);
        let both_on = time_one();
        obs_deltas.push(100.0 * (obs_on - off) / off);
        trace_deltas.push(100.0 * (both_on - off) / off);
    }
    obs::set_enabled(false);
    trace::set_enabled(false);
    trace::reset();
    (median_ci95(&mut obs_deltas), median_ci95(&mut trace_deltas))
}

/// A deterministic ~µs-scale compute kernel for the dispatch bench:
/// xorshift rounds on an index-derived seed, nothing to optimize away.
fn dispatch_workload(i: usize) -> u64 {
    let mut x = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1);
    for _ in 0..200 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

/// One representative, seeded workload per pipeline stage. Each returns a
/// value to `black_box` so nothing is optimized away.
fn stage_workload(stage: &str, fast: bool) -> f64 {
    match stage {
        "sdr" => {
            // Bank synthesis + one device emission.
            use ivn_sdr::bank::TxBank;
            use ivn_sdr::clock::ClockDistribution;
            let mut rng = StdRng::seed_from_u64(SEED);
            let bank = TxBank::new(
                &mut rng,
                5,
                915e6,
                100e3,
                &PAPER_OFFSETS_HZ[..5],
                &ClockDistribution::octoclock(),
            );
            let profile = vec![1.0; if fast { 2_000 } else { 20_000 }];
            bank.emit(0, &profile, 0.05).samples()[0].norm()
        }
        "em" => {
            // Blind-channel ensemble evaluation across the CIB tones.
            use ivn_em::channel::ChannelEnsemble;
            let mut rng = StdRng::seed_from_u64(SEED);
            let ens = ChannelEnsemble::blind(&mut rng, 10, 0.3, 915e6);
            let sweeps = if fast { 200 } else { 2_000 };
            (0..sweeps)
                .flat_map(|k| ens.responses(915e6 + k as f64))
                .map(|c| c.norm_sqr())
                .sum()
        }
        "harvester" => {
            // Dickson-pump power-up transient on a peaky envelope.
            use ivn_harvester::powerup::TagPowerProfile;
            let tag = TagPowerProfile::standard_tag();
            let n = if fast { 10_000 } else { 100_000 };
            let mut env = vec![0.0; n];
            for chunk in env.chunks_mut(1_000) {
                for v in chunk.iter_mut().take(10) {
                    *v = 1e-2;
                }
            }
            let out = tag.power_up(&env, 1e6);
            out.peak_vdc
        }
        "rfid" => {
            // Full downlink + uplink codec pass: PIE encode→rasterize→
            // decode of a Query, then FM0 encode→decode of a reply.
            use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
            use ivn_rfid::fm0::Fm0;
            use ivn_rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};
            let bits = Command::Query {
                dr: DivideRatio::Dr8,
                m: TagEncoding::Fm0,
                trext: false,
                session: Session::S0,
                q: 0,
            }
            .encode();
            let p = PieParams::paper_defaults();
            let reps = if fast { 5 } else { 50 };
            let fm0 = Fm0::new(8);
            let reply: Vec<bool> = (0..96).map(|i| i % 3 == 0).collect();
            let mut acc = 0.0;
            for _ in 0..reps {
                let runs = encode_frame(&bits, &p, true);
                let env = rasterize(&runs, 400e3, 0.0);
                acc += decode_frame(&env, 400e3).map(|d| d.len()).unwrap_or(0) as f64;
                acc += fm0.decode(&fm0.encode(&reply)).len() as f64;
            }
            acc
        }
        "freqsel" => {
            // The Eq. 10 Monte-Carlo objective on the paper's plan.
            use ivn_core::freqsel::expected_peak;
            let mut rng = StdRng::seed_from_u64(SEED);
            let draws = if fast { 16 } else { 96 };
            expected_peak(&PAPER_OFFSETS_HZ, draws, GRID, &mut rng)
        }
        other => unreachable!("unknown stage {other}"),
    }
}

/// One micro-workload per envelope kernel (`ivn_core::kernels`). These
/// run with the same obs/trace state as the stage benches, so with
/// `--obs` the incremental-climb span `freqsel.kernel_incr_ns` lands in
/// the embedded report alongside the batched-eval spans.
fn kernel_workload(kernel: &str, fast: bool) -> f64 {
    use ivn_core::freqsel::{optimize, FreqSelConfig};
    use ivn_core::kernels::EnvelopeScratch;
    // Fixed, arbitrary per-tone phases: the kernels are deterministic
    // given phases, so the micro-benches need no RNG in the hot loop.
    let phases: Vec<f64> = (0..PAPER_OFFSETS_HZ.len())
        .map(|i| 0.37 * (i as f64 + 1.0))
        .collect();
    match kernel {
        "fill_direct" => {
            let mut s = EnvelopeScratch::new();
            s.fill_direct(&PAPER_OFFSETS_HZ, &phases, None, GRID);
            s.peak(&PAPER_OFFSETS_HZ, &phases, None)
        }
        "fill_fft" => {
            let mut s = EnvelopeScratch::new();
            s.fill_fft(&PAPER_OFFSETS_HZ, &phases, None, GRID);
            s.peak(&PAPER_OFFSETS_HZ, &phases, None)
        }
        "climb" => {
            // A miniature end-to-end optimize() so the incremental span
            // shows up in the obs report with realistic call counts.
            let cfg = FreqSelConfig {
                n_antennas: 4,
                rms_limit_hz: 199.0,
                max_offset_hz: 96,
                mc_draws: if fast { 8 } else { 24 },
                grid: 256,
                restarts: 2,
                iterations: if fast { 24 } else { 60 },
            };
            optimize(&cfg, SEED).expected_peak
        }
        other => unreachable!("unknown kernel {other}"),
    }
}

/// Loads and parses a JSON document, with the file's role in the error.
fn load_json(path: &str, role: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {role} {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{role} {path} is not valid JSON: {e}"))
}

/// `--check-baseline`: evaluate an existing bench document against the
/// committed tolerance bands. Skips (exit 0, with a notice) when the
/// baseline was recorded under a different mode than the bench run —
/// fast-mode numbers must never be judged against full-mode bands.
fn run_check_baseline(bench_path: &str, baseline_path: &str) -> std::process::ExitCode {
    let (bench, baseline) = match (
        load_json(bench_path, "bench document"),
        load_json(baseline_path, "baseline"),
    ) {
        (Ok(b), Ok(bl)) => (b, bl),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_runtime: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let bench_mode = bench.get("mode").and_then(Json::as_str).unwrap_or("full");
    match sentinel::baseline_mode(&baseline) {
        Some(m) if m == bench_mode => {}
        Some(m) => {
            println!(
                "check-baseline: SKIP — baseline recorded in '{m}' mode, bench ran in '{bench_mode}'"
            );
            return std::process::ExitCode::SUCCESS;
        }
        None => {
            eprintln!("bench_runtime: baseline {baseline_path} has no 'mode' field");
            return std::process::ExitCode::FAILURE;
        }
    }
    let checks = match sentinel::check(&bench, &baseline) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_runtime: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    for c in &checks {
        println!("{}", c.render());
    }
    let failed = checks.iter().filter(|c| !c.ok).count();
    if failed == 0 {
        println!(
            "check-baseline: OK — {} metrics within tolerance of {baseline_path}",
            checks.len()
        );
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!(
            "check-baseline: FAIL — {failed}/{} metrics outside tolerance of {baseline_path}",
            checks.len()
        );
        std::process::ExitCode::FAILURE
    }
}

/// `--check-ndjson`: validate a flight-recorder stream. Requires at
/// least 3 snapshots (baseline + ≥2 heartbeats) so a recorder that
/// started and immediately died cannot pass the gate.
fn run_check_ndjson(path: &str) -> std::process::ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_runtime: cannot read ndjson {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    match telemetry::validate_ndjson(&text) {
        Ok(n) if n >= 3 => {
            println!("check-ndjson: OK — {n} valid snapshots in {path}");
            std::process::ExitCode::SUCCESS
        }
        Ok(n) => {
            eprintln!("check-ndjson: FAIL — only {n} snapshots in {path}, need >= 3");
            std::process::ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("check-ndjson: FAIL — {path}: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn main() -> std::process::ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    if argv.iter().any(|a| a == "--check-baseline") {
        let bench_path = flag_value("--bench").unwrap_or_else(|| "BENCH_runtime.json".into());
        let baseline_path =
            flag_value("--baseline").unwrap_or_else(|| "BENCH_baseline.json".into());
        return run_check_baseline(&bench_path, &baseline_path);
    }
    if let Some(ndjson_path) = flag_value("--check-ndjson") {
        return run_check_ndjson(&ndjson_path);
    }
    let with_obs = argv.iter().any(|a| a == "--obs");
    let trace_path = argv
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let fast = std::env::var("IVN_BENCH_FAST").is_ok_and(|v| v == "1");
    let trials = if fast { 64 } else { 400 };
    let threads = par::num_threads();
    let offsets = &PAPER_OFFSETS_HZ[..5];

    // The parallel path must change only how fast the answer arrives:
    // every sweep width has to be bit-identical to the serial run.
    let serial = peak_gain_cdf_threads(offsets, trials, GRID, SEED, 1);
    for &t in &THREAD_SWEEP[1..] {
        let parallel = peak_gain_cdf_threads(offsets, trials, GRID, SEED, t);
        assert_eq!(
            serial, parallel,
            "peak_gain_cdf at {t} threads diverged from serial"
        );
    }

    let mut b = Bench::new();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let serial_ns = b
        .bench("peak_gain_cdf/serial", || {
            black_box(peak_gain_cdf_threads(offsets, trials, GRID, SEED, 1))
        })
        .median_ns;
    let mut sweep_entries = Vec::new();
    let mut parallel_ns = serial_ns;
    for &t in &THREAD_SWEEP {
        if t > cores {
            // Timing an oversubscribed width only measures contention,
            // not the pool. Record the skip explicitly so downstream
            // gates can tell "deliberately skipped" from "missing".
            println!("threads {t}: skipped (oversubscribed, {cores} cores)");
            sweep_entries.push(Json::obj([
                ("threads", t.into()),
                ("skipped_oversubscribed", true.into()),
            ]));
            continue;
        }
        let ns = if t == 1 {
            serial_ns
        } else {
            b.bench(&format!("peak_gain_cdf/parallel_x{t}"), || {
                black_box(peak_gain_cdf_threads(offsets, trials, GRID, SEED, t))
            })
            .median_ns
        };
        let speedup = serial_ns / ns;
        println!("threads {t}: median {ns:.0} ns, speedup {speedup:.2}x");
        sweep_entries.push(Json::obj([
            ("threads", t.into()),
            ("median_ns", ns.into()),
            ("speedup", speedup.into()),
        ]));
        parallel_ns = ns;
    }
    let speedup = serial_ns / parallel_ns;
    println!("worker pool width: {threads}, widest-sweep speedup: {speedup:.2}x");

    // Dispatch amortization: identical chunked work through freshly
    // spawned scoped threads vs the persistent pool. This isolates the
    // fixed cost the pool exists to remove — on a single-core host the
    // wall-clock sweep above cannot show parallel speedup, but the
    // dispatch delta is real on any machine.
    let pool_json = {
        use ivn_runtime::pool::WorkerPool;
        let items: Vec<usize> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|&i| dispatch_workload(i)).collect();
        let pool = WorkerPool::global();
        assert_eq!(
            pool.map_indexed(items.len(), 8, dispatch_workload),
            expect,
            "pooled dispatch diverged from inline"
        );
        let spawn_ns = b
            .bench("pool/spawn_dispatch_x8", || {
                black_box(par::par_map_threads(8, &items, |_, &i| {
                    dispatch_workload(i)
                }))
            })
            .median_ns;
        let pooled_ns = b
            .bench("pool/pool_dispatch_x8", || {
                black_box(pool.map_indexed(64, 8, dispatch_workload))
            })
            .median_ns;
        let dispatch_speedup = spawn_ns / pooled_ns;
        println!(
            "pool dispatch x8: spawn {spawn_ns:.0} ns vs pooled {pooled_ns:.0} ns \
             ({dispatch_speedup:.2}x, {} workers on {cores} cores)",
            pool.workers()
        );
        Json::obj([
            ("workers", pool.workers().into()),
            ("cores", cores.into()),
            ("spawn_dispatch_ns", spawn_ns.into()),
            ("pool_dispatch_ns", pooled_ns.into()),
            ("dispatch_speedup_x8", dispatch_speedup.into()),
        ])
    };

    // What does flipping the instrumentation on actually cost?
    let (obs_oh, trace_oh) = measure_overhead(offsets);
    println!(
        "instrumentation overhead on peak_gain_cdf: obs {:+.2}% [95% CI {:+.2}..{:+.2}], \
         obs+trace {:+.2}% [95% CI {:+.2}..{:+.2}]",
        obs_oh.pct, obs_oh.ci_lo, obs_oh.ci_hi, trace_oh.pct, trace_oh.ci_lo, trace_oh.ci_hi
    );

    // Per-stage wall-clock breakdown. With --obs the stage runs also feed
    // the metric registry, so the report reflects exactly this work.
    const STAGES: [&str; 5] = ["sdr", "em", "harvester", "rfid", "freqsel"];
    if with_obs {
        obs::reset();
        obs::set_enabled(true);
    }
    if trace_path.is_some() {
        trace::reset();
        trace::set_enabled(true);
    }
    let mut stage_entries = Vec::new();
    for stage in STAGES {
        let r = b.bench(&format!("stage/{stage}"), || {
            black_box(stage_workload(stage, fast))
        });
        println!("stage {stage:<10} median {:>12.0} ns", r.median_ns);
        stage_entries.push(Json::obj([
            ("stage", stage.into()),
            ("median_ns", r.median_ns.into()),
            ("mean_ns", r.mean_ns.into()),
            ("min_ns", r.min_ns.into()),
        ]));
    }
    // Envelope-kernel micro-benches, under the same obs/trace state so
    // their spans feed the same report.
    const KERNELS: [&str; 3] = ["fill_direct", "fill_fft", "climb"];
    let mut kernel_entries = Vec::new();
    for kernel in KERNELS {
        let r = b.bench(&format!("kernel/{kernel}"), || {
            black_box(kernel_workload(kernel, fast))
        });
        println!("kernel {kernel:<12} median {:>12.0} ns", r.median_ns);
        kernel_entries.push(Json::obj([
            ("kernel", kernel.into()),
            ("median_ns", r.median_ns.into()),
            ("mean_ns", r.mean_ns.into()),
            ("min_ns", r.min_ns.into()),
        ]));
    }
    {
        // The hill climber's inner step: one incremental candidate
        // evaluation over cached per-draw grids (kernel built once, so
        // the bench isolates the swap itself).
        use ivn_core::kernels::CrnKernel;
        let mut rng = StdRng::seed_from_u64(SEED);
        let draws = if fast { 16 } else { 96 };
        let mut ck = CrnKernel::new(&PAPER_OFFSETS_HZ, draws, GRID, &mut rng);
        let r = b.bench("kernel/swap_eval", || black_box(ck.score_swap(3, 55.0)));
        println!("kernel {:<12} median {:>12.0} ns", "swap_eval", r.median_ns);
        kernel_entries.push(Json::obj([
            ("kernel", "swap_eval".into()),
            ("median_ns", r.median_ns.into()),
            ("mean_ns", r.mean_ns.into()),
            ("min_ns", r.min_ns.into()),
        ]));
    }
    // Streaming sample-path throughput: one full 1-second CIB period
    // through the block driver (100 kS/s in fast mode, 1 MS/s in full),
    // timed per stage. Runs under the same obs/trace state so the
    // streaming spans land in the embedded report too.
    let streaming_json = {
        let opts = ivn_bench::pipeline::StreamOptions {
            sample_rate: Some(if fast { 1e5 } else { 1e6 }),
            ..Default::default()
        };
        let report = ivn_bench::pipeline::outputs_streaming(true, &opts);
        let mut entries = Vec::new();
        for &(stage, ns, samples) in &report.stage_ns {
            let msps = if ns > 0 {
                samples as f64 * 1e3 / ns as f64
            } else {
                0.0
            };
            println!("streaming {stage:<10} {msps:>10.2} MS/s");
            entries.push(Json::obj([
                ("stage", stage.into()),
                ("msps", msps.into()),
                ("ns", (ns as f64).into()),
                ("samples", samples.into()),
            ]));
        }
        Json::obj([
            ("sample_rate", report.outputs.sample_rate.into()),
            ("block", report.block.into()),
            ("threads", report.threads.into()),
            ("stages", Json::Arr(entries)),
        ])
    };

    // Mass-campaign throughput: a generated fleet of power-session
    // scenarios through the campaign driver at full pool width.
    let campaign_json = {
        use ivn_core::scenario::{builtin, gen};
        let n_scenarios = if fast { 64 } else { 256 };
        let spec = gen::GenSpec {
            base: builtin("session").expect("builtin"),
            count: n_scenarios,
            seed: SEED,
            sweeps: vec![gen::SweepAxis {
                path: "placement.depth_m".into(),
                values: [0.02, 0.05, 0.08, 0.11]
                    .iter()
                    .map(|&d| Json::from(d))
                    .collect(),
            }],
            jitters: vec![gen::JitterSpec {
                path: "eirp_dbm".into(),
                frac: 0.05,
            }],
        };
        let fleet = gen::generate(&spec).expect("generate fleet");
        let t0 = std::time::Instant::now();
        let outcome = ivn_bench::campaign::run(&fleet, true, threads);
        let seconds = t0.elapsed().as_secs_f64();
        assert!(outcome.errors.is_empty(), "campaign errors: {outcome:?}");
        let per_sec = n_scenarios as f64 / seconds;
        println!(
            "campaign: {n_scenarios} scenarios in {seconds:.2} s ({per_sec:.1} scenarios/sec)"
        );
        Json::obj([
            ("scenarios", n_scenarios.into()),
            ("threads", threads.into()),
            ("seconds", seconds.into()),
            ("scenarios_per_sec", per_sec.into()),
        ])
    };

    // Plan-sharing campaign: the same session fleet but with an
    // `Optimize` frequency plan, so every scenario runs the Eq. 10
    // search unless the PlanCache intervenes. Cold = cache disabled
    // (every scenario pays the search), warm = cache enabled from
    // empty (first miss computes, the rest of the fleet hits — depth
    // sweeps and EIRP jitters don't touch the plan key). The two
    // reports must be byte-identical: a cache hit returns exactly what
    // the cold path computes.
    let campaign_planshare_json = {
        use ivn_core::plancache::PlanCache;
        use ivn_core::scenario::{builtin, gen, FreqPlan, FreqSelSpec, QuickFull};
        let n_scenarios = if fast { 128 } else { 256 };
        let mut base = builtin("session").expect("builtin");
        base.array.plan = FreqPlan::Optimize {
            spec: FreqSelSpec {
                n_antennas: base.array.n_antennas,
                rms_limit_hz: 199.0,
                max_offset_hz: 160,
                mc_draws: QuickFull::same(16),
                grid: QuickFull::same(512),
                restarts: QuickFull::same(2),
                iterations: QuickFull::same(40),
            },
            seed: SEED,
        };
        let spec = gen::GenSpec {
            base,
            count: n_scenarios,
            seed: SEED + 1,
            sweeps: vec![gen::SweepAxis {
                path: "placement.depth_m".into(),
                values: [0.02, 0.05, 0.08, 0.11]
                    .iter()
                    .map(|&d| Json::from(d))
                    .collect(),
            }],
            jitters: vec![gen::JitterSpec {
                path: "eirp_dbm".into(),
                frac: 0.05,
            }],
        };
        let fleet = gen::generate(&spec).expect("generate planshare fleet");
        let cache = PlanCache::global();

        cache.clear();
        cache.set_enabled(false);
        let t0 = std::time::Instant::now();
        let cold = ivn_bench::campaign::run(&fleet, true, threads);
        let cold_seconds = t0.elapsed().as_secs_f64();
        assert!(cold.errors.is_empty(), "cold planshare errors: {cold:?}");

        cache.set_enabled(true);
        cache.clear();
        cache.reset_counters();
        let t0 = std::time::Instant::now();
        let warm = ivn_bench::campaign::run(&fleet, true, threads);
        let warm_seconds = t0.elapsed().as_secs_f64();
        assert!(warm.errors.is_empty(), "warm planshare errors: {warm:?}");
        let (hits, misses) = cache.counters();
        assert!(hits > 0, "plan-sharing fleet produced no cache hits");
        assert!(
            (misses as usize) < n_scenarios,
            "every scenario missed the plan cache"
        );
        let byte_identical = cold.report().dump() == warm.report().dump();
        assert!(byte_identical, "cache hits diverged from cold computation");

        let cold_per_sec = n_scenarios as f64 / cold_seconds;
        let warm_per_sec = n_scenarios as f64 / warm_seconds;
        let speedup = cold_seconds / warm_seconds;
        let hit_rate = hits as f64 / (hits + misses) as f64;
        println!(
            "campaign planshare: {n_scenarios} scenarios cold {cold_per_sec:.1}/s \
             warm {warm_per_sec:.1}/s ({speedup:.1}x, hit rate {hit_rate:.2})"
        );
        Json::obj([
            ("scenarios", n_scenarios.into()),
            ("threads", threads.into()),
            ("cold_seconds", cold_seconds.into()),
            ("warm_seconds", warm_seconds.into()),
            ("cold_per_sec", cold_per_sec.into()),
            ("warm_per_sec", warm_per_sec.into()),
            ("speedup", speedup.into()),
            ("cache_hits", (hits as f64).into()),
            ("cache_misses", (misses as f64).into()),
            ("hit_rate", hit_rate.into()),
            ("byte_identical", byte_identical.into()),
        ])
    };

    // Population-scale inventory fleet: three anti-collision policies,
    // each inventorying a fleet of bodies carrying 512 tags through the
    // worker pool. Per-body state is a few counters, so the run holds
    // constant memory while pushing over a million tag-sessions; a
    // 64-body probe re-run at 1/2/8 workers pins pool-width invariance.
    let inventory_json = {
        use ivn_bench::inventory::{fleet_experiment, run_fleet};
        use ivn_core::scenario::PolicySpec;
        let tags_per_body = 512;
        let bodies = if fast { 768 } else { 1024 };
        let exp = fleet_experiment(tags_per_body);

        let probe = PolicySpec::Adaptive { q0: 6, c: 0.3 };
        let one = run_fleet(&exp, probe.clone(), 64, SEED, 1);
        for t in [2, 8] {
            assert_eq!(
                one,
                run_fleet(&exp, probe.clone(), 64, SEED, t),
                "inventory fleet diverged at {t} threads"
            );
        }

        let policies = [
            PolicySpec::Adaptive { q0: 6, c: 0.3 },
            PolicySpec::Fixed { q: 9 },
            PolicySpec::Schoute { q0: 6 },
        ];
        let mut total_sessions = 0usize;
        let mut policy_entries = Vec::new();
        for policy in policies {
            let name = policy.name();
            let t0 = std::time::Instant::now();
            let stats = run_fleet(&exp, policy, bodies, SEED, threads);
            let seconds = t0.elapsed().as_secs_f64();
            let per_sec = stats.tag_sessions as f64 / seconds;
            total_sessions += stats.tag_sessions;
            println!(
                "inventory {name:<9} {bodies} bodies x {tags_per_body} tags in {seconds:.2} s \
                 ({per_sec:.0} tag-sessions/sec, rounds-to-full median {:.0})",
                stats.rounds_to_full_median
            );
            policy_entries.push(Json::obj([
                ("policy", name.into()),
                ("tag_sessions", stats.tag_sessions.into()),
                ("seconds", seconds.into()),
                ("tag_sessions_per_sec", per_sec.into()),
                ("rounds_to_full_median", stats.rounds_to_full_median.into()),
                (
                    "terminated_frac",
                    (stats.terminated as f64 / bodies as f64).into(),
                ),
                ("slots_per_tag", stats.slots_per_tag.into()),
                ("captures", (stats.captures as usize).into()),
            ]));
        }
        assert!(
            total_sessions >= 1_000_000,
            "inventory fleet too small: {total_sessions} tag-sessions"
        );
        Json::obj([
            ("tags_per_body", tags_per_body.into()),
            ("bodies_per_policy", bodies.into()),
            ("total_tag_sessions", total_sessions.into()),
            ("thread_invariant", true.into()),
            ("policies", Json::Arr(policy_entries)),
        ])
    };

    // Per-worker pool observatory snapshot, taken after every pooled
    // workload above has run, so the lanes reflect this process's whole
    // dispatch history (sweep + dispatch bench + campaign).
    let pool_workers_json = {
        use ivn_runtime::pool::WorkerPool;
        let lanes = WorkerPool::global().stats();
        Json::Arr(
            lanes
                .iter()
                .map(|l| {
                    Json::obj([
                        ("lane", l.lane.as_str().into()),
                        ("tasks", (l.tasks as f64).into()),
                        ("steals", (l.steals as f64).into()),
                        ("steal_misses", (l.steal_misses as f64).into()),
                        ("parks", (l.parks as f64).into()),
                        ("wakes", (l.wakes as f64).into()),
                        ("busy_ns", (l.busy_ns as f64).into()),
                        ("idle_ns", (l.idle_ns as f64).into()),
                        ("busy_frac", l.busy_frac().into()),
                        ("queue_pushed", (l.queue_pushed as f64).into()),
                        ("queue_depth_peak", (l.queue_depth_peak as f64).into()),
                    ])
                })
                .collect(),
        )
    };

    let obs_report = with_obs.then(|| {
        let report = obs::report();
        obs::set_enabled(false);
        print!("{}", report.render());
        report.to_json()
    });
    if let Some(path) = &trace_path {
        trace::set_enabled(false);
        let t = trace::snapshot();
        std::fs::write(path, t.to_chrome_json().dump() + "\n").expect("write trace");
        println!("wrote trace to {path} ({} events)", t.events.len());
    }

    let mut fields = vec![
        ("bench", Json::from("peak_gain_cdf")),
        ("mode", Json::from(if fast { "fast" } else { "full" })),
        ("offsets", offsets.to_vec().into()),
        ("trials", trials.into()),
        ("grid", GRID.into()),
        ("seed", (SEED as f64).into()),
        ("worker_threads", threads.into()),
        ("cores", cores.into()),
        ("serial_median_ns", serial_ns.into()),
        ("parallel_median_ns", parallel_ns.into()),
        ("speedup", speedup.into()),
        ("parallel_sweep", Json::Arr(sweep_entries)),
        ("pool", pool_json),
        ("obs_overhead_pct", obs_oh.pct.into()),
        (
            "obs_overhead_ci95_pct",
            Json::Arr(vec![obs_oh.ci_lo.into(), obs_oh.ci_hi.into()]),
        ),
        ("trace_overhead_pct", trace_oh.pct.into()),
        (
            "trace_overhead_ci95_pct",
            Json::Arr(vec![trace_oh.ci_lo.into(), trace_oh.ci_hi.into()]),
        ),
        ("stages", Json::Arr(stage_entries)),
        ("kernels", Json::Arr(kernel_entries)),
        ("streaming", streaming_json),
        ("campaign", campaign_json),
        ("campaign_planshare", campaign_planshare_json),
        ("inventory", inventory_json),
        ("pool_workers", pool_workers_json),
        ("results", b.to_json()),
    ];
    if let Some(report) = obs_report {
        fields.push(("obs_report", report));
    }
    let doc = Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    std::fs::write("BENCH_runtime.json", doc.dump() + "\n").expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");
    std::process::ExitCode::SUCCESS
}
