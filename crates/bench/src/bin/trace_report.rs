//! `trace_report` — offline analyzer for Chrome Trace Event JSON written
//! by `reproduce --trace` / `bench_runtime --trace`.
//!
//! ```text
//! trace_report <trace.json> [--check] [--top <k>]
//! ```
//!
//! Prints the profiler view (self-vs-total per span name, per-track
//! utilization, critical path, widest idle gaps, physics counter tracks).
//! With `--check` it instead validates the file — parses through the
//! in-tree JSON layer, requires a non-empty `traceEvents` array and a
//! matching `E` for every `B` — and exits non-zero on violation
//! (`scripts/verify.sh` runs this as the trace round-trip gate).

use ivn_bench::trace_analysis::analyze;
use ivn_runtime::json::Json;
use ivn_runtime::trace::Trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let top_k = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5);
    let path = {
        let mut paths = Vec::new();
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
                continue;
            }
            match a.as_str() {
                "--top" => skip = true,
                "--check" => {}
                _ => paths.push(a.clone()),
            }
        }
        paths.into_iter().next()
    };
    let Some(path) = path else {
        eprintln!("usage: trace_report <trace.json> [--check] [--top <k>]");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_report: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::from_chrome_json(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path} is not a Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    if check {
        if trace.events.is_empty() {
            eprintln!("trace_report: FAIL — traceEvents is empty");
            return ExitCode::FAILURE;
        }
        match trace.check_balanced() {
            Ok(matched) => {
                println!(
                    "trace_report: OK — {} events, {} balanced span pairs",
                    trace.events.len(),
                    matched
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("trace_report: FAIL — unbalanced spans: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    print!("{}", analyze(&trace).render(top_k));
    if trace.dropped > 0 {
        println!(
            "note: {} events were dropped (ring wraparound) before export",
            trace.dropped
        );
    }
    ExitCode::SUCCESS
}
