//! `trace_report` — offline analyzer for Chrome Trace Event JSON written
//! by `reproduce --trace` / `bench_runtime --trace`.
//!
//! ```text
//! trace_report <trace.json> [--check] [--top <k>] [--attribute] [--bench <BENCH_runtime.json>]
//! ```
//!
//! Prints the profiler view (self-vs-total per span name, per-track
//! utilization, critical path, widest idle gaps, physics counter tracks).
//! With `--check` it instead validates the file — parses through the
//! in-tree JSON layer, requires a non-empty `traceEvents` array and a
//! matching `E` for every `B` — and exits non-zero on violation
//! (`scripts/verify.sh` runs this as the trace round-trip gate).
//! With `--attribute` it prints the bottleneck attribution report
//! instead: span self time grouped and ranked by pipeline stage,
//! pool-lane (`pool.job`) utilization and imbalance, and — when
//! `--bench` points at a BENCH_runtime.json — the per-stage streaming
//! MS/s spread, so the 8-thread ~1x sweep and the sdr-vs-em gap get an
//! explanation instead of a number.

use ivn_bench::trace_analysis::{analyze, attribute};
use ivn_runtime::json::Json;
use ivn_runtime::trace::Trace;
use std::process::ExitCode;

const USAGE: &str =
    "usage: trace_report <trace.json> [--check] [--top <k>] [--attribute] [--bench <bench.json>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let with_attribution = args.iter().any(|a| a == "--attribute");
    let top_k = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5);
    let bench_path = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let path = {
        let mut paths = Vec::new();
        let mut skip = false;
        for a in &args {
            if skip {
                skip = false;
                continue;
            }
            match a.as_str() {
                "--top" | "--bench" => skip = true,
                "--check" | "--attribute" => {}
                _ => paths.push(a.clone()),
            }
        }
        paths.into_iter().next()
    };
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_report: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::from_chrome_json(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_report: {path} is not a Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    if check {
        if trace.events.is_empty() {
            eprintln!("trace_report: FAIL — traceEvents is empty");
            return ExitCode::FAILURE;
        }
        match trace.check_balanced() {
            Ok(matched) => {
                println!(
                    "trace_report: OK — {} events, {} balanced span pairs",
                    trace.events.len(),
                    matched
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("trace_report: FAIL — unbalanced spans: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if with_attribution {
        let bench = match &bench_path {
            Some(bp) => match std::fs::read_to_string(bp)
                .map_err(|e| e.to_string())
                .and_then(|t| Json::parse(&t).map_err(|e| format!("{e}")))
            {
                Ok(d) => Some(d),
                Err(e) => {
                    eprintln!("trace_report: cannot use --bench {bp}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        print!("{}", attribute(&analyze(&trace), bench.as_ref()).render());
        return ExitCode::SUCCESS;
    }

    print!("{}", analyze(&trace).render(top_k));
    if trace.dropped > 0 {
        println!(
            "note: {} events were dropped (ring wraparound) before export",
            trace.dropped
        );
    }
    ExitCode::SUCCESS
}
