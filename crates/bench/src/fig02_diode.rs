//! Fig. 2 — diode I-V curves: ideal vs realistic (threshold) diode.

use ivn_harvester::diode::DiodeModel;

/// Regenerates Fig. 2: current vs voltage for the ideal and the
/// threshold-limited diode.
pub fn run(_quick: bool) -> String {
    let ideal = DiodeModel::Ideal;
    let real = DiodeModel::typical_rfid();
    let shockley = DiodeModel::Shockley {
        i_sat: 1e-9,
        ideality: 1.2,
    };
    let mut out = crate::header("Fig. 2 — diode I-V: ideal vs realistic");
    out += &format!(
        "{:>8}  {:>12}  {:>12}  {:>12}\n",
        "V (V)", "ideal (mA)", "thresh (mA)", "shockley(mA)"
    );
    for k in 0..=16 {
        let v = -0.2 + 0.05 * k as f64;
        out += &format!(
            "{:>8.2}  {:>12.4}  {:>12.4}  {:>12.4}\n",
            v,
            ideal.current(v).min(10.0) * 1e3,
            real.current(v) * 1e3,
            shockley.current(v).min(0.01) * 1e3,
        );
    }
    out += &format!(
        "\nthreshold voltages: ideal {:.3} V, realistic {:.3} V (paper: 200-400 mV)\n",
        ideal.threshold(),
        real.threshold()
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let s = super::run(true);
        assert!(s.contains("0.25"));
        assert!(s.lines().count() > 15);
    }
}
