//! The `inventory` reproduce target and the population-scale fleet
//! runner behind the `inventory` section of BENCH_runtime.json.
//!
//! [`render`] is the human-facing report: it takes an `inventory`
//! scenario, runs its trials under each anti-collision policy arm
//! (the scenario's own plus the remaining defaults) and prints a
//! policy-comparison table — rounds to full inventory, slots per tag
//! read, read fraction, capture-resolved slots.
//!
//! [`run_fleet`] is the throughput harness: a fleet of bodies, each
//! carrying the same prepared population, pushed through the persistent
//! worker pool with one RNG fork per body. Per-body state is a handful
//! of counters, so a million tag-sessions run in constant memory; the
//! per-body stats vector doubles as the byte-identity witness the
//! thread-invariance check compares across 1/2/8 workers.

use ivn_core::inventory::InventoryExperiment;
use ivn_core::scenario::{PolicySpec, Scenario, ScenarioKind, TagPopulation};
use ivn_dsp::stats::Summary;
use ivn_runtime::json::{Json, ToJson};
use ivn_runtime::par;
use ivn_runtime::pool::WorkerPool;
use ivn_runtime::rng::StdRng;
use std::sync::Arc;

/// Policy arms for a scenario: its declared policy first, then the
/// default arms whose names it doesn't already cover.
fn policy_arms(declared: &PolicySpec) -> Vec<PolicySpec> {
    let mut arms = vec![declared.clone()];
    for p in PolicySpec::default_arms() {
        if p.name() != declared.name() {
            arms.push(p);
        }
    }
    arms
}

/// Renders the `inventory` reproduce target: the scenario's population
/// inventoried under each policy arm, physical per-tag channel draws.
pub fn render(s: &Scenario, quick: bool) -> Result<String, String> {
    let ScenarioKind::Inventory {
        population, policy, ..
    } = &s.kind
    else {
        return Err(format!(
            "scenario '{}' is not inventory (kind '{}')",
            s.name,
            s.kind.type_name()
        ));
    };
    let exp = InventoryExperiment::prepare(s, quick)?;
    let trials = s.trial_count(quick).max(1);
    ivn_runtime::obs_count!("experiment.trials", trials * population.count);

    let mut out = crate::header(&format!(
        "scenario '{}' (inventory, {} tags, {} antennas)",
        s.name, population.count, s.array.n_antennas
    ));
    out += &format!(
        "{:>10} trials x {} tags, capture + coupling on\n\n",
        trials, population.count
    );
    out += &format!(
        "{:>10}  {:>14}  {:>10}  {:>8}  {:>8}\n",
        "policy", "rounds-to-full", "slots/tag", "read", "captures"
    );

    let mut policies_json: Vec<Json> = Vec::new();
    for arm in policy_arms(policy) {
        let arm_exp = exp.with_policy(arm.clone());
        let runs = par::ensemble_threads(1, trials, s.seed, |rng, _| arm_exp.run_trial(rng));
        let rounds: Vec<f64> = runs
            .iter()
            .filter(|r| r.terminated)
            .map(|r| r.rounds as f64)
            .collect();
        let (mut powered, mut read, mut slots, mut captures) = (0usize, 0usize, 0usize, 0usize);
        for r in &runs {
            powered += r.powered;
            read += r.inventoried;
            slots += r.slots;
            captures += r.captures;
        }
        let rounds_median = Summary::of(&rounds).map(|s| s.median).unwrap_or(f64::NAN);
        let slots_per_tag = slots as f64 / read.max(1) as f64;
        let read_frac = read as f64 / powered.max(1) as f64;
        out += &format!(
            "{:>10}  {:>14.1}  {:>10.2}  {:>7.0}%  {:>8}\n",
            arm.name(),
            rounds_median,
            slots_per_tag,
            read_frac * 100.0,
            captures
        );
        policies_json.push(Json::obj([
            ("policy", arm.name().to_string().into()),
            ("rounds_to_full_median", rounds_median.into()),
            ("slots_per_tag", slots_per_tag.into()),
            ("read_frac", read_frac.into()),
            ("captures", captures.into()),
        ]));
    }
    let doc = Json::obj([
        ("name", s.name.clone().into()),
        ("trials", trials.into()),
        ("population", population.count.into()),
        ("policies", Json::Arr(policies_json)),
    ]);
    out += &format!("\n{}\n", doc.dump());
    Ok(out)
}

/// Per-body outcome in a fleet run — small and `PartialEq`, so the
/// whole vector doubles as a byte-identity witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodyStats {
    /// Tags read.
    pub inventoried: u32,
    /// Rounds executed.
    pub rounds: u32,
    /// Whether every powered tag was read.
    pub terminated: bool,
    /// Total protocol slots.
    pub slots: u64,
    /// Collision slots.
    pub collisions: u64,
    /// Capture-resolved slots.
    pub captures: u64,
}

/// Aggregate of one policy's fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Bodies simulated.
    pub bodies: usize,
    /// Population per body.
    pub tags_per_body: usize,
    /// `bodies × tags_per_body`.
    pub tag_sessions: usize,
    /// Tags read across the fleet.
    pub inventoried: u64,
    /// Bodies whose inventory completed.
    pub terminated: usize,
    /// Median rounds-to-full across completed bodies.
    pub rounds_to_full_median: f64,
    /// Protocol slots per tag read.
    pub slots_per_tag: f64,
    /// Capture-resolved slots across the fleet.
    pub captures: u64,
    /// Per-body outcomes (the thread-invariance witness).
    pub per_body: Vec<BodyStats>,
}

/// The fleet population: a dense free-space line close enough that the
/// nominal budget powers every tag, with the coupling knobs on.
pub fn fleet_experiment(tags_per_body: usize) -> InventoryExperiment {
    let mut s = Scenario::base(
        "inventory-fleet",
        ScenarioKind::Inventory {
            population: TagPopulation {
                count: tags_per_body,
                spacing_m: 0.001,
                detuning: 0.02,
                shadow_db: 0.01,
            },
            policy: PolicySpec::Adaptive { q0: 6, c: 0.3 },
            max_rounds: 1024,
            capture_db: 6.0,
            fade_db: 3.0,
        },
    );
    s.placement = ivn_core::scenario::PlacementSpec::FreeSpace { range_m: 1.0 };
    InventoryExperiment::prepare(&s, true).expect("fleet scenario resolves")
}

/// Runs `bodies` protocol-dominated inventories under one policy on the
/// worker pool. Body `b` draws from `seed`'s fork `b`, so the result is
/// bit-identical at any thread count.
pub fn run_fleet(
    exp: &InventoryExperiment,
    policy: PolicySpec,
    bodies: usize,
    seed: u64,
    threads: usize,
) -> FleetStats {
    let tags_per_body = exp.count();
    let arm = Arc::new(exp.with_policy(policy));
    let root = StdRng::seed_from_u64(seed);
    let per_body: Vec<BodyStats> = WorkerPool::global().map_indexed(bodies, threads, move |b| {
        let run = arm.run_trial_nominal(&root.fork(b as u64));
        BodyStats {
            inventoried: run.inventoried as u32,
            rounds: run.rounds as u32,
            terminated: run.terminated,
            slots: run.slots as u64,
            collisions: run.collisions as u64,
            captures: run.captures as u64,
        }
    });

    let rounds: Vec<f64> = per_body
        .iter()
        .filter(|b| b.terminated)
        .map(|b| b.rounds as f64)
        .collect();
    let inventoried: u64 = per_body.iter().map(|b| b.inventoried as u64).sum();
    let slots: u64 = per_body.iter().map(|b| b.slots).sum();
    FleetStats {
        bodies,
        tags_per_body,
        tag_sessions: bodies * tags_per_body,
        inventoried,
        terminated: per_body.iter().filter(|b| b.terminated).count(),
        rounds_to_full_median: Summary::of(&rounds).map(|s| s.median).unwrap_or(f64::NAN),
        slots_per_tag: slots as f64 / inventoried.max(1) as f64,
        captures: per_body.iter().map(|b| b.captures).sum(),
        per_body,
    }
}

impl ToJson for FleetStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bodies", self.bodies.into()),
            ("tags_per_body", self.tags_per_body.into()),
            ("tag_sessions", self.tag_sessions.into()),
            ("inventoried", (self.inventoried as usize).into()),
            ("terminated", self.terminated.into()),
            ("rounds_to_full_median", self.rounds_to_full_median.into()),
            ("slots_per_tag", self.slots_per_tag.into()),
            ("captures", (self.captures as usize).into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_core::scenario::builtin;

    #[test]
    fn render_compares_three_policies() {
        let s = builtin("inventory").unwrap();
        let out = render(&s, true).unwrap();
        for name in ["adaptive", "fixed", "schoute"] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
        assert!(out.contains("rounds-to-full"), "{out}");
        assert!(out.contains("\"policies\""), "{out}");
    }

    #[test]
    fn fleet_is_thread_invariant_and_completes() {
        let exp = fleet_experiment(64);
        let policy = PolicySpec::Adaptive { q0: 6, c: 0.3 };
        let a = run_fleet(&exp, policy.clone(), 16, 99, 1);
        let b = run_fleet(&exp, policy.clone(), 16, 99, 2);
        let c = run_fleet(&exp, policy, 16, 99, 8);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.tag_sessions, 16 * 64);
        assert_eq!(a.terminated, 16, "every body should finish: {a:?}");
        assert_eq!(a.inventoried, 16 * 64, "fleet tags all power: {a:?}");
    }

    #[test]
    fn fleet_scales_population_without_budget_exhaustion() {
        for &tags in &[16usize, 128, 512] {
            let exp = fleet_experiment(tags);
            let stats = run_fleet(&exp, PolicySpec::Schoute { q0: 6 }, 4, 7, 2);
            assert_eq!(stats.terminated, 4, "{tags} tags: {stats:?}");
            assert!(stats.slots_per_tag < 10.0, "{tags} tags: {stats:?}");
        }
    }
}
