//! Fig. 13 — operating range vs number of antennas, four panels:
//! (a) standard tag in air, (b) miniature tag in air,
//! (c) standard tag in water, (d) miniature tag in water.
//!
//! Each point is a full end-to-end session search: power-up, downlink
//! decode through the CIB ripple, and RN16 recovery at the out-of-band
//! reader — the paper's "reader can decode the tag's RN16" criterion.

use ivn_core::experiment::range_vs_antennas;
use ivn_core::scenario::{PlacementSpec, Scenario, TagKind};

/// Renders all four Fig. 13 panels by deriving each panel's scenario
/// from the base `range` scenario: tag and environment vary, everything
/// else (seed, antenna sweep, EIRP) is shared.
pub fn render(s: &Scenario, quick: bool) -> String {
    let air = PlacementSpec::FreeSpace { range_m: 2.0 };
    let water = PlacementSpec::WaterTank { depth_m: 0.10 };
    let mut out = String::new();
    let panels = [
        (
            "Fig. 13a — standard tag in air (m)",
            air.clone(),
            TagKind::Standard,
            1.0,
        ),
        (
            "Fig. 13b — miniature tag in air (m)",
            air,
            TagKind::Miniature,
            1.0,
        ),
        (
            "Fig. 13c — standard tag in water (cm)",
            water.clone(),
            TagKind::Standard,
            100.0,
        ),
        (
            "Fig. 13d — miniature tag in water (cm)",
            water,
            TagKind::Miniature,
            100.0,
        ),
    ];
    for (title, placement, tag, scale) in panels {
        let panel = s.clone().with_placement(placement).with_tag(tag);
        out += &crate::header(title);
        out += &format!("{:>10}  {:>12}\n", "antennas", "max range");
        let rows = range_vs_antennas(&panel, quick);
        for r in &rows {
            out += &format!("{:>10}  {:>12.2}\n", r.n, r.range_m * scale);
        }
        if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
            if first.range_m > 0.0 {
                out += &format!(
                    "gain over single antenna: {:.1}×\n",
                    last.range_m / first.range_m
                );
            } else {
                out += "single antenna cannot power the tag at all (range 0)\n";
            }
        }
    }
    out += "\npaper anchors: std tag air 5.2 m → 38 m (7.6×); std water → 23 cm; mini water → 11 cm; mini cannot power without CIB\n";
    out
}

/// Regenerates all four Fig. 13 panels from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig13").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_panels() {
        let s = super::run(true);
        for p in ["13a", "13b", "13c", "13d"] {
            assert!(s.contains(p), "missing panel {p}");
        }
    }
}
