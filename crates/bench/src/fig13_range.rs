//! Fig. 13 — operating range vs number of antennas, four panels:
//! (a) standard tag in air, (b) miniature tag in air,
//! (c) standard tag in water, (d) miniature tag in water.
//!
//! Each point is a full end-to-end session search: power-up, downlink
//! decode through the CIB ripple, and RN16 recovery at the out-of-band
//! reader — the paper's "reader can decode the tag's RN16" criterion.

use ivn_core::body::TagSpec;
use ivn_core::experiment::{range_vs_antennas, RangeEnvironment};

/// Regenerates all four Fig. 13 panels.
pub fn run(quick: bool) -> String {
    let n_max = if quick { 4 } else { 8 };
    let mut out = String::new();
    let panels = [
        (
            "Fig. 13a — standard tag in air (m)",
            RangeEnvironment::Air,
            TagSpec::standard(),
            1.0,
        ),
        (
            "Fig. 13b — miniature tag in air (m)",
            RangeEnvironment::Air,
            TagSpec::miniature(),
            1.0,
        ),
        (
            "Fig. 13c — standard tag in water (cm)",
            RangeEnvironment::Water,
            TagSpec::standard(),
            100.0,
        ),
        (
            "Fig. 13d — miniature tag in water (cm)",
            RangeEnvironment::Water,
            TagSpec::miniature(),
            100.0,
        ),
    ];
    for (title, env, tag, scale) in panels {
        out += &crate::header(title);
        out += &format!("{:>10}  {:>12}\n", "antennas", "max range");
        let rows = range_vs_antennas(env, tag, n_max, 1313);
        for r in &rows {
            out += &format!("{:>10}  {:>12.2}\n", r.n, r.range_m * scale);
        }
        if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
            if first.range_m > 0.0 {
                out += &format!(
                    "gain over single antenna: {:.1}×\n",
                    last.range_m / first.range_m
                );
            } else {
                out += "single antenna cannot power the tag at all (range 0)\n";
            }
        }
    }
    out += "\npaper anchors: std tag air 5.2 m → 38 m (7.6×); std water → 23 cm; mini water → 11 cm; mini cannot power without CIB\n";
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_panels() {
        let s = super::run(true);
        for p in ["13a", "13b", "13c", "13d"] {
            assert!(s.contains(p), "missing panel {p}");
        }
    }
}
