//! Perf-regression sentinel: machine-checkable tolerance bands over
//! BENCH_runtime.json.
//!
//! The committed `BENCH_baseline.json` pins the metrics that matter —
//! stage medians, streaming MS/s, pool dispatch speedup, overhead CIs,
//! campaign throughput — each with a direction and a tolerance factor
//! wide enough to absorb shared-runner noise but narrow enough that a
//! real regression (a 4x stage slowdown, a collapsed speedup) trips the
//! gate. `bench_runtime --check-baseline` evaluates the bands after a
//! bench run; `scripts/verify.sh` makes it a PR gate.
//!
//! Baseline format:
//!
//! ```json
//! {
//!   "mode": "fast",
//!   "metrics": [
//!     {"path": "stages.stage=sdr.median_ns", "value": 14600, "band": "upper", "factor": 4.0},
//!     {"path": "streaming.stages.stage=sdr.msps", "value": 27.6, "band": "lower", "factor": 4.0},
//!     {"path": "obs_overhead_ci95_pct.1", "value": 2.0, "band": "max"}
//!   ]
//! }
//! ```
//!
//! `path` is a dotted lookup into the bench document; a segment of the
//! form `key=value` selects the element of an array whose `key` field
//! equals `value`, and a bare integer segment indexes an array. Bands:
//! `upper` fails when measured > value × factor (for "smaller is
//! better" metrics), `lower` fails when measured < value ÷ factor
//! ("bigger is better"), and `max` fails when measured > value (an
//! absolute ceiling, e.g. an overhead percentage).

use ivn_runtime::json::Json;

/// Resolves a dotted `path` (with `key=value` array selectors and bare
/// integer indices) to a number inside `doc`.
pub fn lookup(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = match cur {
            Json::Obj(_) => cur.get(seg)?,
            Json::Arr(items) => {
                if let Some((key, want)) = seg.split_once('=') {
                    items.iter().find(|e| {
                        e.get(key).is_some_and(|v| match v {
                            Json::Str(s) => s == want,
                            Json::Num(n) => want.parse::<f64>() == Ok(*n),
                            _ => false,
                        })
                    })?
                } else {
                    items.get(seg.parse::<usize>().ok()?)?
                }
            }
            _ => return None,
        };
    }
    cur.as_f64()
}

/// Direction and width of one metric's tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub enum Band {
    /// Fail when `measured > value * factor` (latency-like metrics).
    Upper(f64),
    /// Fail when `measured < value / factor` (throughput-like metrics).
    Lower(f64),
    /// Fail when `measured > value` (absolute ceiling, factor-free).
    Max,
}

/// Outcome of checking one baseline metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Dotted path into the bench document.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Measured value (`None` when the path is missing).
    pub measured: Option<f64>,
    /// The band that was applied.
    pub band: Band,
    /// Whether the metric passed.
    pub ok: bool,
}

impl Check {
    /// One human-readable gate line.
    pub fn render(&self) -> String {
        let verdict = if self.ok { "ok  " } else { "FAIL" };
        let bound = match self.band {
            Band::Upper(f) => format!(
                "<= {:.6} (baseline {:.6} x {f})",
                self.baseline * f,
                self.baseline
            ),
            Band::Lower(f) => format!(
                ">= {:.6} (baseline {:.6} / {f})",
                self.baseline / f,
                self.baseline
            ),
            Band::Max => format!("<= {:.6} (absolute)", self.baseline),
        };
        match self.measured {
            Some(m) => format!("{verdict}  {:<44} measured {m:.6}, need {bound}", self.path),
            None => format!("{verdict}  {:<44} MISSING from bench document", self.path),
        }
    }
}

/// Evaluates every metric in `baseline` against `bench`. Returns the
/// per-metric checks; a missing path is a failure (a silently vanished
/// metric must not pass the gate). `Err` means the baseline document
/// itself is malformed.
pub fn check(bench: &Json, baseline: &Json) -> Result<Vec<Check>, String> {
    let metrics = baseline
        .get("metrics")
        .and_then(Json::as_array)
        .ok_or("baseline: missing 'metrics' array")?;
    let mut out = Vec::with_capacity(metrics.len());
    for (i, m) in metrics.iter().enumerate() {
        let path = m
            .get("path")
            .and_then(Json::as_str)
            .ok_or(format!("baseline metric {i}: missing 'path'"))?
            .to_string();
        let value = m
            .get("value")
            .and_then(Json::as_f64)
            .ok_or(format!("baseline metric {i} ({path}): missing 'value'"))?;
        let band_name = m.get("band").and_then(Json::as_str).unwrap_or("upper");
        let factor = m.get("factor").and_then(Json::as_f64).unwrap_or(2.0);
        if factor < 1.0 {
            return Err(format!("baseline metric {i} ({path}): factor {factor} < 1"));
        }
        let band = match band_name {
            "upper" => Band::Upper(factor),
            "lower" => Band::Lower(factor),
            "max" => Band::Max,
            other => {
                return Err(format!(
                    "baseline metric {i} ({path}): unknown band '{other}'"
                ))
            }
        };
        let measured = lookup(bench, &path);
        let ok = match (measured, &band) {
            (None, _) => false,
            (Some(m), Band::Upper(f)) => m <= value * f,
            (Some(m), Band::Lower(f)) => m >= value / f,
            (Some(m), Band::Max) => m <= value,
        };
        out.push(Check {
            path,
            baseline: value,
            measured,
            band,
            ok,
        });
    }
    Ok(out)
}

/// The `mode` a baseline was recorded under (`"fast"`/`"full"`).
pub fn baseline_mode(baseline: &Json) -> Option<&str> {
    baseline.get("mode").and_then(Json::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc() -> Json {
        Json::parse(
            r#"{
                "mode": "fast",
                "speedup": 0.99,
                "obs_overhead_ci95_pct": [-0.5, 1.3],
                "stages": [
                    {"stage": "sdr", "median_ns": 14600},
                    {"stage": "em", "median_ns": 77600}
                ],
                "streaming": {"stages": [{"stage": "sdr", "msps": 27.6}]},
                "parallel_sweep": [
                    {"threads": 1, "speedup": 1.0},
                    {"threads": 8, "speedup": 0.99}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn lookup_handles_selectors_and_indices() {
        let d = bench_doc();
        assert_eq!(lookup(&d, "speedup"), Some(0.99));
        assert_eq!(lookup(&d, "stages.stage=em.median_ns"), Some(77600.0));
        assert_eq!(lookup(&d, "streaming.stages.stage=sdr.msps"), Some(27.6));
        assert_eq!(lookup(&d, "parallel_sweep.threads=8.speedup"), Some(0.99));
        assert_eq!(lookup(&d, "obs_overhead_ci95_pct.1"), Some(1.3));
        assert_eq!(lookup(&d, "stages.stage=nope.median_ns"), None);
        assert_eq!(lookup(&d, "no.such.path"), None);
    }

    #[test]
    fn bands_gate_in_the_right_direction() {
        let d = bench_doc();
        let baseline = Json::parse(
            r#"{"mode":"fast","metrics":[
                {"path":"stages.stage=sdr.median_ns","value":14600,"band":"upper","factor":4.0},
                {"path":"streaming.stages.stage=sdr.msps","value":27.6,"band":"lower","factor":4.0},
                {"path":"obs_overhead_ci95_pct.1","value":2.0,"band":"max"},
                {"path":"stages.stage=sdr.median_ns","value":1000,"band":"upper","factor":2.0},
                {"path":"streaming.stages.stage=sdr.msps","value":1000,"band":"lower","factor":2.0},
                {"path":"gone.metric","value":1,"band":"upper"}
            ]}"#,
        )
        .unwrap();
        let checks = check(&d, &baseline).unwrap();
        assert!(checks[0].ok, "within 4x upper band");
        assert!(checks[1].ok, "within 4x lower band");
        assert!(checks[2].ok, "under absolute ceiling");
        assert!(!checks[3].ok, "14600 > 1000*2 must fail");
        assert!(!checks[4].ok, "27.6 < 1000/2 must fail");
        assert!(!checks[5].ok, "missing path must fail");
        assert!(checks[5].render().contains("MISSING"));
        assert!(checks[3].render().starts_with("FAIL"));
        assert!(checks[0].render().starts_with("ok"));
    }

    #[test]
    fn malformed_baselines_are_errors() {
        let d = bench_doc();
        assert!(check(&d, &Json::parse(r#"{}"#).unwrap()).is_err());
        let bad_band =
            Json::parse(r#"{"metrics":[{"path":"speedup","value":1,"band":"sideways"}]}"#).unwrap();
        assert!(check(&d, &bad_band).is_err());
        let bad_factor =
            Json::parse(r#"{"metrics":[{"path":"speedup","value":1,"factor":0.5}]}"#).unwrap();
        assert!(check(&d, &bad_factor).is_err());
    }
}
