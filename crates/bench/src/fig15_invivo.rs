//! §6.2 / Fig. 15 — the in-vivo swine campaign: gastric and subcutaneous
//! placements for both tags, preamble-correlation ≥ 0.8 success criterion.

use ivn_core::experiment::in_vivo_campaign;
use ivn_core::scenario::Scenario;

/// Renders the §6.2 results table for an `in_vivo` scenario.
pub fn render(s: &Scenario, quick: bool) -> String {
    let rows = in_vivo_campaign(s, quick);
    let mut out = crate::header(&format!(
        "§6.2 / Fig. 15 — in-vivo swine campaign ({} antennas)",
        s.array.n_antennas
    ));
    out += &format!(
        "{:<22}  {:<16}  {:>10}  {:>12}\n",
        "placement", "tag", "success", "median corr"
    );
    for r in &rows {
        out += &format!(
            "{:<22}  {:<16}  {:>6}/{:<3}  {:>12.2}\n",
            r.placement, r.tag, r.successes, r.trials, r.median_correlation
        );
    }
    out += "\npaper: gastric standard 3/6; gastric miniature 0/6; subcutaneous standard & miniature all trials\n";
    out
}

/// Regenerates the §6.2 results table from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("invivo").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_rows_match_paper_pattern() {
        let s = super::run(true);
        // Four data rows (the title also mentions "swine").
        assert_eq!(
            s.lines().filter(|l| l.starts_with("swine")).count(),
            4,
            "{s}"
        );
        assert!(s.contains("gastric"));
        assert!(s.contains("subcutaneous"));
    }
}
