//! §6.2 / Fig. 15 — the in-vivo swine campaign: gastric and subcutaneous
//! placements for both tags, preamble-correlation ≥ 0.8 success criterion.

use ivn_core::experiment::in_vivo_campaign;

/// Regenerates the §6.2 results table.
pub fn run(quick: bool) -> String {
    let trials = if quick { 6 } else { 12 };
    let rows = in_vivo_campaign(trials, 1515);
    let mut out = crate::header("§6.2 / Fig. 15 — in-vivo swine campaign (8 antennas)");
    out += &format!(
        "{:<22}  {:<16}  {:>10}  {:>12}\n",
        "placement", "tag", "success", "median corr"
    );
    for r in &rows {
        out += &format!(
            "{:<22}  {:<16}  {:>6}/{:<3}  {:>12.2}\n",
            r.placement, r.tag, r.successes, r.trials, r.median_correlation
        );
    }
    out += "\npaper: gastric standard 3/6; gastric miniature 0/6; subcutaneous standard & miniature all trials\n";
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_rows_match_paper_pattern() {
        let s = super::run(true);
        // Four data rows (the title also mentions "swine").
        assert_eq!(
            s.lines().filter(|l| l.starts_with("swine")).count(),
            4,
            "{s}"
        );
        assert!(s.contains("gastric"));
        assert!(s.contains("subcutaneous"));
    }
}
