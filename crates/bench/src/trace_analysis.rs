//! Offline analysis of timeline traces: turns the flat event stream of an
//! [`ivn_runtime::trace::Trace`] into nested span intervals and derives
//! the numbers a profiler view would show — self-vs-total time per span
//! name, per-track utilization, the critical path, the widest idle gaps,
//! and counter-track (physics probe) statistics.
//!
//! The `trace_report` binary is a thin shell over [`analyze`] +
//! [`Analysis::render`]; keeping the logic here makes it unit-testable.

use ivn_runtime::json::Json;
use ivn_runtime::trace::{EventKind, Trace};

/// One matched begin/end pair, nested via `depth`/`parent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Span name.
    pub name: String,
    /// Track (worker-slot lane) it ran on.
    pub track: u32,
    /// Begin timestamp, ns since trace epoch.
    pub start_ns: u64,
    /// End timestamp, ns since trace epoch.
    pub end_ns: u64,
    /// Nesting depth on its track (0 = top level).
    pub depth: usize,
    /// Index of the enclosing interval, if nested.
    pub parent: Option<usize>,
    /// Total duration of direct children, for self-time computation.
    pub child_ns: u64,
}

impl Interval {
    /// Wall duration of the interval.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration minus time spent in child spans.
    pub fn self_ns(&self) -> u64 {
        self.dur_ns().saturating_sub(self.child_ns)
    }
}

/// Aggregate over every interval sharing one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameStat {
    /// Span name.
    pub name: String,
    /// Number of intervals.
    pub count: usize,
    /// Sum of wall durations.
    pub total_ns: u64,
    /// Sum of self times (wall minus children).
    pub self_ns: u64,
}

/// Busy/idle accounting for one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackStat {
    /// Track id.
    pub track: u32,
    /// Sum of top-level span durations on the track.
    pub busy_ns: u64,
    /// `busy_ns` over the whole trace wall time.
    pub utilization: f64,
    /// Matched span count on the track.
    pub spans: usize,
}

/// An idle stretch between consecutive top-level spans on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct Gap {
    /// Track id.
    pub track: u32,
    /// Gap start, ns since trace epoch.
    pub start_ns: u64,
    /// Gap width.
    pub width_ns: u64,
    /// Name of the span that follows the gap.
    pub before: String,
}

/// Min/max/last summary of one counter track (physics probe).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Sample count.
    pub samples: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Final sample.
    pub last: f64,
}

/// Everything [`analyze`] derives from a trace.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Matched intervals, grouped by track and start-ordered within each.
    pub intervals: Vec<Interval>,
    /// Trace wall time: last event minus first event.
    pub wall_ns: u64,
    /// Per-name aggregates, widest self time first.
    pub by_name: Vec<NameStat>,
    /// Per-track utilization, by track id.
    pub tracks: Vec<TrackStat>,
    /// Idle gaps between top-level spans, widest first.
    pub gaps: Vec<Gap>,
    /// The chain of longest-child spans under the longest top-level span.
    pub critical_path: Vec<usize>,
    /// Counter-track summaries.
    pub counters: Vec<CounterStat>,
}

/// Builds the full analysis. Unbalanced span events (orphan ends,
/// unclosed begins) are skipped, mirroring the exporter's balancing pass.
pub fn analyze(trace: &Trace) -> Analysis {
    let mut a = Analysis::default();
    let (first, last) = match (trace.events.first(), trace.events.last()) {
        (Some(f), Some(l)) => (f.ts_ns, l.ts_ns),
        _ => return a,
    };
    a.wall_ns = last.saturating_sub(first);

    // Match begin/end into intervals, per track, stack-wise.
    let mut track_ids: Vec<u32> = trace.events.iter().map(|e| e.track).collect();
    track_ids.sort_unstable();
    track_ids.dedup();
    for &track in &track_ids {
        let mut open: Vec<usize> = Vec::new();
        for e in trace.events.iter().filter(|e| e.track == track) {
            match e.kind {
                EventKind::Begin => {
                    let parent = open.last().copied();
                    a.intervals.push(Interval {
                        name: e.name.clone(),
                        track,
                        start_ns: e.ts_ns,
                        end_ns: e.ts_ns,
                        depth: open.len(),
                        parent,
                        child_ns: 0,
                    });
                    open.push(a.intervals.len() - 1);
                }
                EventKind::End => {
                    if let Some(&i) = open.last() {
                        if a.intervals[i].name == e.name {
                            open.pop();
                            a.intervals[i].end_ns = e.ts_ns;
                            if let Some(p) = a.intervals[i].parent {
                                a.intervals[p].child_ns += a.intervals[i].dur_ns();
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Unclosed begins: drop by zeroing (dur 0, never on any ranking).
        for i in open {
            a.intervals[i].end_ns = a.intervals[i].start_ns;
        }
    }
    // Intervals stay grouped by track, start-ordered within each track,
    // so `parent` indices remain valid.

    // Per-name aggregates.
    for iv in &a.intervals {
        match a.by_name.iter_mut().find(|s| s.name == iv.name) {
            Some(s) => {
                s.count += 1;
                s.total_ns += iv.dur_ns();
                s.self_ns += iv.self_ns();
            }
            None => a.by_name.push(NameStat {
                name: iv.name.clone(),
                count: 1,
                total_ns: iv.dur_ns(),
                self_ns: iv.self_ns(),
            }),
        }
    }
    a.by_name.sort_by(|x, y| y.self_ns.cmp(&x.self_ns));

    // Per-track utilization and gaps between top-level spans.
    for &track in &track_ids {
        let tops: Vec<&Interval> = a
            .intervals
            .iter()
            .filter(|iv| iv.track == track && iv.depth == 0)
            .collect();
        let busy_ns: u64 = tops.iter().map(|iv| iv.dur_ns()).sum();
        let spans = a.intervals.iter().filter(|iv| iv.track == track).count();
        a.tracks.push(TrackStat {
            track,
            busy_ns,
            utilization: if a.wall_ns > 0 {
                busy_ns as f64 / a.wall_ns as f64
            } else {
                0.0
            },
            spans,
        });
        for pair in tops.windows(2) {
            let width = pair[1].start_ns.saturating_sub(pair[0].end_ns);
            if width > 0 {
                a.gaps.push(Gap {
                    track,
                    start_ns: pair[0].end_ns,
                    width_ns: width,
                    before: pair[1].name.clone(),
                });
            }
        }
    }
    a.gaps.sort_by(|x, y| y.width_ns.cmp(&x.width_ns));

    // Critical path: from the longest top-level span, repeatedly descend
    // into the longest span it directly encloses (same track, inside it,
    // one level deeper).
    let mut cursor = a
        .intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| iv.depth == 0)
        .max_by_key(|(_, iv)| iv.dur_ns())
        .map(|(i, _)| i);
    while let Some(i) = cursor {
        a.critical_path.push(i);
        let (track, depth, s, e) = {
            let iv = &a.intervals[i];
            (iv.track, iv.depth, iv.start_ns, iv.end_ns)
        };
        cursor = a
            .intervals
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.track == track && c.depth == depth + 1 && c.start_ns >= s && c.end_ns <= e
            })
            .max_by_key(|(_, c)| c.dur_ns())
            .map(|(j, _)| j);
    }

    // Counter tracks.
    for e in &trace.events {
        if e.kind != EventKind::Counter {
            continue;
        }
        match a.counters.iter_mut().find(|c| c.name == e.name) {
            Some(c) => {
                c.samples += 1;
                c.min = c.min.min(e.value);
                c.max = c.max.max(e.value);
                c.last = e.value;
            }
            None => a.counters.push(CounterStat {
                name: e.name.clone(),
                samples: 1,
                min: e.value,
                max: e.value,
                last: e.value,
            }),
        }
    }
    a
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Analysis {
    /// Renders the profiler view: span table, track utilization, critical
    /// path, top-`k` gaps and counter summaries.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        out += &format!(
            "trace: {} spans on {} tracks over {}\n",
            self.intervals.len(),
            self.tracks.len(),
            fmt_ns(self.wall_ns)
        );

        out += "\nspan name                          count       total        self\n";
        out += "----------------------------------------------------------------\n";
        for s in &self.by_name {
            out += &format!(
                "{:<32} {:>7} {:>11} {:>11}\n",
                s.name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns)
            );
        }

        out += "\ntrack   busy        utilization  spans\n";
        for t in &self.tracks {
            out += &format!(
                "{:>5}   {:<11} {:>6.1}%     {:>5}\n",
                t.track,
                fmt_ns(t.busy_ns),
                100.0 * t.utilization,
                t.spans
            );
        }

        if !self.critical_path.is_empty() {
            out += "\ncritical path (longest top-level span, longest child chain):\n";
            for &i in &self.critical_path {
                let iv = &self.intervals[i];
                out += &format!(
                    "{:indent$}{} — {} (track {})\n",
                    "",
                    iv.name,
                    fmt_ns(iv.dur_ns()),
                    iv.track,
                    indent = 2 * (iv.depth + 1)
                );
            }
        }

        let gaps: Vec<&Gap> = self.gaps.iter().take(top_k).collect();
        if !gaps.is_empty() {
            out += &format!(
                "\ntop {} widest idle gaps between top-level spans:\n",
                gaps.len()
            );
            for g in gaps {
                out += &format!(
                    "  track {:>3}: {} idle before '{}'\n",
                    g.track,
                    fmt_ns(g.width_ns),
                    g.before
                );
            }
        }

        if !self.counters.is_empty() {
            out += "\ncounter tracks (physics probes):\n";
            for c in &self.counters {
                out += &format!(
                    "  {:<32} {:>6} samples  min {:.3e}  max {:.3e}  last {:.3e}\n",
                    c.name, c.samples, c.min, c.max, c.last
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Bottleneck attribution (`trace_report --attribute`).
// ---------------------------------------------------------------------

/// Self-time share of one pipeline stage (span names grouped by their
/// prefix before the first `.` — `sdr.emit_block_ns` → `sdr`).
#[derive(Debug, Clone, PartialEq)]
pub struct StageShare {
    /// Stage prefix (`sdr`, `em`, `harvester`, `rfid`, `freqsel`, `pool`, …).
    pub stage: String,
    /// Summed self time of every span in the stage.
    pub self_ns: u64,
    /// Number of spans contributing.
    pub count: usize,
    /// `self_ns` over the total self time of all stages.
    pub share: f64,
    /// Streaming throughput from BENCH_runtime.json, when provided.
    pub msps: Option<f64>,
}

/// One trace track that executed `pool.job` spans — a worker lane (or a
/// helping caller) as seen from the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolLane {
    /// Track id.
    pub track: u32,
    /// Summed duration of its `pool.job` spans.
    pub busy_ns: u64,
    /// Number of jobs it ran.
    pub jobs: usize,
    /// `busy_ns` over the trace wall time.
    pub utilization: f64,
}

/// The ranked imbalance report combining span self-time by stage,
/// pool-lane utilization, and (optionally) per-stage streaming MS/s.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Trace wall time.
    pub wall_ns: u64,
    /// Stages ranked by self time, descending.
    pub stages: Vec<StageShare>,
    /// Tracks that ran pool jobs, ranked by busy time, descending.
    pub pool_lanes: Vec<PoolLane>,
    /// Busiest over least-busy pool lane (`None` with < 2 lanes).
    pub lane_imbalance: Option<f64>,
    /// `(slowest stage, fastest stage, ratio)` by streaming MS/s
    /// (`None` without bench data).
    pub throughput_imbalance: Option<(String, String, f64)>,
}

/// Extracts `(stage, msps)` pairs from a BENCH_runtime.json document's
/// `streaming.stages` section.
fn streaming_msps(bench: &Json) -> Vec<(String, f64)> {
    let Some(stages) = bench
        .get("streaming")
        .and_then(|s| s.get("stages"))
        .and_then(Json::as_array)
    else {
        return Vec::new();
    };
    stages
        .iter()
        .filter_map(|e| {
            let stage = e.get("stage")?.as_str()?.to_string();
            let msps = e.get("msps")?.as_f64()?;
            Some((stage, msps))
        })
        .collect()
}

/// Builds the attribution view from an [`Analysis`], optionally joining
/// per-stage streaming throughput from a parsed BENCH_runtime.json.
pub fn attribute(a: &Analysis, bench: Option<&Json>) -> Attribution {
    let msps = bench.map(streaming_msps).unwrap_or_default();

    // Group span self time by stage prefix.
    let mut stages: Vec<StageShare> = Vec::new();
    for s in &a.by_name {
        let stage = s.name.split('.').next().unwrap_or(&s.name).to_string();
        match stages.iter_mut().find(|g| g.stage == stage) {
            Some(g) => {
                g.self_ns += s.self_ns;
                g.count += s.count;
            }
            None => stages.push(StageShare {
                msps: msps.iter().find(|(n, _)| *n == stage).map(|&(_, v)| v),
                stage,
                self_ns: s.self_ns,
                count: s.count,
                share: 0.0,
            }),
        }
    }
    let total: u64 = stages.iter().map(|g| g.self_ns).sum();
    for g in &mut stages {
        g.share = if total > 0 {
            g.self_ns as f64 / total as f64
        } else {
            0.0
        };
    }
    stages.sort_by(|x, y| y.self_ns.cmp(&x.self_ns));

    // Pool lanes: tracks with pool.job spans.
    let mut pool_lanes: Vec<PoolLane> = Vec::new();
    for iv in a.intervals.iter().filter(|iv| iv.name == "pool.job") {
        match pool_lanes.iter_mut().find(|l| l.track == iv.track) {
            Some(l) => {
                l.busy_ns += iv.dur_ns();
                l.jobs += 1;
            }
            None => pool_lanes.push(PoolLane {
                track: iv.track,
                busy_ns: iv.dur_ns(),
                jobs: 1,
                utilization: 0.0,
            }),
        }
    }
    for l in &mut pool_lanes {
        l.utilization = if a.wall_ns > 0 {
            l.busy_ns as f64 / a.wall_ns as f64
        } else {
            0.0
        };
    }
    pool_lanes.sort_by(|x, y| y.busy_ns.cmp(&x.busy_ns));
    let lane_imbalance = match (pool_lanes.first(), pool_lanes.last()) {
        (Some(hi), Some(lo)) if pool_lanes.len() >= 2 && lo.busy_ns > 0 => {
            Some(hi.busy_ns as f64 / lo.busy_ns as f64)
        }
        _ => None,
    };

    // Throughput imbalance from the streaming section (the 10x
    // sdr-vs-em spread shows up here regardless of what was traced).
    let throughput_imbalance = {
        let mut rated: Vec<&(String, f64)> = msps.iter().filter(|(_, v)| *v > 0.0).collect();
        rated.sort_by(|x, y| x.1.total_cmp(&y.1));
        match (rated.first(), rated.last()) {
            (Some(slow), Some(fast)) if rated.len() >= 2 => {
                Some((slow.0.clone(), fast.0.clone(), fast.1 / slow.1))
            }
            _ => None,
        }
    };

    Attribution {
        wall_ns: a.wall_ns,
        stages,
        pool_lanes,
        lane_imbalance,
        throughput_imbalance,
    }
}

impl Attribution {
    /// Renders the ranked bottleneck attribution report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out += &format!("bottleneck attribution — {} wall\n", fmt_ns(self.wall_ns));

        out += "\nstage ranking (summed span self time):\n";
        out += "stage        self time      share   spans   streaming MS/s\n";
        out += "--------------------------------------------------------\n";
        for g in &self.stages {
            out += &format!(
                "{:<12} {:>11} {:>8.1}% {:>7}   {}\n",
                g.stage,
                fmt_ns(g.self_ns),
                100.0 * g.share,
                g.count,
                g.msps
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }

        if self.pool_lanes.is_empty() {
            out += "\npool lanes: no pool.job spans in this trace — every \
                    dispatch ran inline on the caller (width 1, nested, or \
                    trivial input), which is why extra threads buy nothing\n";
        } else {
            out += "\npool lanes (tracks running pool.job spans):\n";
            for l in &self.pool_lanes {
                out += &format!(
                    "  track {:>3}: {:>11} busy, {:>5} jobs, {:>5.1}% of wall\n",
                    l.track,
                    fmt_ns(l.busy_ns),
                    l.jobs,
                    100.0 * l.utilization
                );
            }
            if let Some(r) = self.lane_imbalance {
                out += &format!("  lane imbalance (busiest / least busy): {r:.2}x\n");
            }
            let covered: f64 = self.pool_lanes.iter().map(|l| l.utilization).sum();
            out += &format!(
                "  aggregate lane utilization: {:.2} lane-equivalents over the trace\n",
                covered
            );
        }

        if let Some((slow, fast, ratio)) = &self.throughput_imbalance {
            out += &format!(
                "\nstreaming throughput spread: {slow} is {ratio:.1}x slower than \
                 {fast} — the pipeline drains at the slowest stage's rate\n"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivn_runtime::trace::TraceEvent;

    fn ev(name: &str, kind: EventKind, track: u32, ts_ns: u64, value: f64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            kind,
            track,
            ts_ns,
            value,
        }
    }

    /// track 0: outer [0,100] wrapping inner [10,40]; track 1: solo [20,50],
    /// gap, solo [80,90]; plus one counter with three samples.
    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                ev("outer", EventKind::Begin, 0, 0, 0.0),
                ev("inner", EventKind::Begin, 0, 10, 0.0),
                ev("solo", EventKind::Begin, 1, 20, 0.0),
                ev("probe", EventKind::Counter, 0, 25, 1.5),
                ev("inner", EventKind::End, 0, 40, 0.0),
                ev("solo", EventKind::End, 1, 50, 0.0),
                ev("probe", EventKind::Counter, 0, 60, 0.5),
                ev("solo", EventKind::Begin, 1, 80, 0.0),
                ev("solo", EventKind::End, 1, 90, 0.0),
                ev("probe", EventKind::Counter, 0, 95, 1.0),
                ev("outer", EventKind::End, 0, 100, 0.0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn intervals_nesting_and_self_time() {
        let a = analyze(&sample_trace());
        assert_eq!(a.wall_ns, 100);
        assert_eq!(a.intervals.len(), 4);
        let outer = a.by_name.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 70, "outer self excludes inner's 30");
        let solo = a.by_name.iter().find(|s| s.name == "solo").unwrap();
        assert_eq!(solo.count, 2);
        assert_eq!(solo.total_ns, 40);
        assert_eq!(solo.self_ns, 40);
    }

    #[test]
    fn utilization_and_gaps() {
        let a = analyze(&sample_trace());
        let t0 = a.tracks.iter().find(|t| t.track == 0).unwrap();
        assert_eq!(t0.busy_ns, 100);
        assert!((t0.utilization - 1.0).abs() < 1e-12);
        let t1 = a.tracks.iter().find(|t| t.track == 1).unwrap();
        assert_eq!(t1.busy_ns, 40);
        assert_eq!(a.gaps.len(), 1);
        assert_eq!(a.gaps[0].track, 1);
        assert_eq!(a.gaps[0].width_ns, 30);
        assert_eq!(a.gaps[0].before, "solo");
    }

    #[test]
    fn critical_path_descends_longest_children() {
        let a = analyze(&sample_trace());
        let names: Vec<&str> = a
            .critical_path
            .iter()
            .map(|&i| a.intervals[i].name.as_str())
            .collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn counters_summarized() {
        let a = analyze(&sample_trace());
        assert_eq!(a.counters.len(), 1);
        let c = &a.counters[0];
        assert_eq!((c.samples, c.min, c.max, c.last), (3, 0.5, 1.5, 1.0));
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let a = analyze(&Trace::default());
        assert!(a.intervals.is_empty());
        assert_eq!(a.wall_ns, 0);
        let text = a.render(5);
        assert!(text.contains("0 spans"));
    }

    #[test]
    fn render_mentions_every_section() {
        let text = analyze(&sample_trace()).render(3);
        assert!(text.contains("critical path"));
        assert!(text.contains("utilization"));
        assert!(text.contains("physics probes") || text.contains("counter tracks"));
    }

    /// Two pool lanes with 3:1 busy imbalance plus sdr/em stage spans.
    fn pool_trace() -> Trace {
        Trace {
            events: vec![
                ev("pool.job", EventKind::Begin, 2, 0, 0.0),
                ev("sdr.emit_block_ns", EventKind::Begin, 2, 5, 0.0),
                ev("sdr.emit_block_ns", EventKind::End, 2, 280, 0.0),
                ev("pool.job", EventKind::End, 2, 300, 0.0),
                ev("pool.job", EventKind::Begin, 3, 0, 0.0),
                ev("em.channel_eval_ns", EventKind::Begin, 3, 10, 0.0),
                ev("em.channel_eval_ns", EventKind::End, 3, 90, 0.0),
                ev("pool.job", EventKind::End, 3, 100, 0.0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn attribution_ranks_stages_and_lanes() {
        let a = analyze(&pool_trace());
        let bench = Json::parse(
            r#"{"streaming":{"stages":[
                {"stage":"sdr","msps":27.6},
                {"stage":"em","msps":140.9},
                {"stage":"harvester","msps":23.3}
            ]}}"#,
        )
        .unwrap();
        let attr = attribute(&a, Some(&bench));

        // sdr has the widest self time and joins its streaming rate.
        assert_eq!(attr.stages[0].stage, "sdr");
        assert_eq!(attr.stages[0].msps, Some(27.6));
        let shares: f64 = attr.stages.iter().map(|g| g.share).sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares sum to {shares}");

        // Two pool lanes, 300 vs 100 ns busy → 3x imbalance.
        assert_eq!(attr.pool_lanes.len(), 2);
        assert_eq!(attr.pool_lanes[0].track, 2);
        assert_eq!(attr.pool_lanes[0].busy_ns, 300);
        assert_eq!(attr.pool_lanes[0].jobs, 1);
        let imbalance = attr.lane_imbalance.unwrap();
        assert!((imbalance - 3.0).abs() < 1e-9, "imbalance {imbalance}");

        // harvester (23.3) is the slowest streaming stage vs em (140.9).
        let (slow, fast, ratio) = attr.throughput_imbalance.clone().unwrap();
        assert_eq!((slow.as_str(), fast.as_str()), ("harvester", "em"));
        assert!((ratio - 140.9 / 23.3).abs() < 1e-9);

        let text = attr.render();
        assert!(text.contains("bottleneck attribution"));
        assert!(text.contains("stage ranking"));
        assert!(text.contains("pool lanes"));
        assert!(text.contains("lane imbalance"));
        assert!(text.contains("slower than"));
    }

    #[test]
    fn attribution_without_pool_or_bench_degrades_gracefully() {
        let attr = attribute(&analyze(&sample_trace()), None);
        assert!(attr.pool_lanes.is_empty());
        assert!(attr.lane_imbalance.is_none());
        assert!(attr.throughput_imbalance.is_none());
        let text = attr.render();
        assert!(text.contains("no pool.job spans"));
        assert!(text.contains("ran inline"));
    }
}
