//! Fig. 9 — peak power gain vs number of antennas (median with 10th/90th
//! percentile error bars over random channel conditions).

use ivn_core::experiment::gain_vs_antennas;
use ivn_core::scenario::Scenario;

/// Renders Fig. 9 for a `gain_vs_antennas` scenario. The paper runs 150
/// trials per antenna count.
pub fn render(s: &Scenario, quick: bool) -> String {
    let rows = gain_vs_antennas(s, quick);
    let mut out = crate::header("Fig. 9 — peak power gain vs number of antennas");
    out += &format!(
        "{:>10}  {:>10}  {:>10}  {:>10}\n",
        "antennas", "p10", "median", "p90"
    );
    for r in &rows {
        out += &format!(
            "{:>10}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.n, r.gain.p10, r.gain.median, r.gain.p90
        );
    }
    // Anchor rows are looked up by antenna count — a sweep that stops
    // short of N=8/N=10 degrades gracefully instead of panicking.
    let g8 = rows.iter().find(|r| r.n == 8);
    let g10 = rows.iter().find(|r| r.n == 10);
    match (g8, g10) {
        (Some(g8), Some(g10)) => {
            out += &format!(
                "\npaper anchors: median ≈ 55× at N=8; gains as high as 85× at N=10\nmeasured:     median {:.0}× at N=8; p90 {:.0}× at N=10\n",
                g8.gain.median, g10.gain.p90
            );
        }
        _ => {
            out += "\npaper anchors: median ≈ 55× at N=8; gains as high as 85× at N=10\nmeasured:     sweep does not reach N=8/N=10 — no anchor comparison\n";
        }
    }
    out
}

/// Regenerates Fig. 9 from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig9").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    use ivn_core::scenario::{builtin, ScenarioKind};

    #[test]
    fn ten_rows_increasing() {
        let s = super::run(true);
        assert_eq!(
            s.lines()
                .filter(|l| l.trim().starts_with(char::is_numeric))
                .count(),
            10
        );
        assert!(s.contains("paper anchors"));
    }

    #[test]
    fn short_sweep_does_not_panic() {
        let mut s = builtin("fig9").unwrap();
        s.kind = ScenarioKind::GainVsAntennas { n_max: 4 };
        let out = super::render(&s, true);
        assert!(out.contains("no anchor comparison"), "{out}");
    }
}
