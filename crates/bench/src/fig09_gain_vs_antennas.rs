//! Fig. 9 — peak power gain vs number of antennas (median with 10th/90th
//! percentile error bars over random channel conditions).

use ivn_core::experiment::gain_vs_antennas;

/// Regenerates Fig. 9. The paper runs 150 trials.
pub fn run(quick: bool) -> String {
    let trials = if quick { 50 } else { 150 };
    let rows = gain_vs_antennas(10, trials, 918);
    let mut out = crate::header("Fig. 9 — peak power gain vs number of antennas");
    out += &format!(
        "{:>10}  {:>10}  {:>10}  {:>10}\n",
        "antennas", "p10", "median", "p90"
    );
    for r in &rows {
        out += &format!(
            "{:>10}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.n, r.gain.p10, r.gain.median, r.gain.p90
        );
    }
    out += &format!(
        "\npaper anchors: median ≈ 55× at N=8; gains as high as 85× at N=10\nmeasured:     median {:.0}× at N=8; p90 {:.0}× at N=10\n",
        rows[7].gain.median, rows[9].gain.p90
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ten_rows_increasing() {
        let s = super::run(true);
        assert_eq!(
            s.lines()
                .filter(|l| l.trim().starts_with(char::is_numeric))
                .count(),
            10
        );
        assert!(s.contains("paper anchors"));
    }
}
