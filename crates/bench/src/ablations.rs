//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! 1. **Coherent beamforming through unknown media** (the §6.1.1c
//!    footnote): channel-aware precoding with stale estimates is no
//!    better than the blind baseline.
//! 2. **Out-of-band vs in-band reader** (§4): the SAW + frequency offset
//!    is what keeps the uplink decodable under CIB self-jamming.
//! 3. **Amplitude-flatness constraint** (§3.6): plans violating Eq. 9
//!    deliver peaks the tag cannot *decode through*.
//! 4. **Averaging gain** (§5b): correlation vs number of averaged CIB
//!    periods.

use ivn_core::experiment::stale_mrt_vs_baseline_cdf;
use ivn_core::oob::{JamTone, OobReader, OobReaderConfig};
use ivn_core::waveform::{eq9_rms_bound, rms_offset, CibEnvelope};
use ivn_rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn_rfid::link::LinkParams;
use ivn_rfid::pie;
use ivn_runtime::rng::{Rng, StdRng};

/// Ablation 1: stale-channel MRT vs the blind baseline.
pub fn coherent_vs_baseline(quick: bool) -> String {
    let trials = if quick { 300 } else { 3000 };
    let cdf = stale_mrt_vs_baseline_cdf(trials, 41);
    let mut out = crate::header("Ablation — coherent beamforming with stale channel estimates");
    out += &format!(
        "median ratio over blind baseline: {:.2}× (CIB achieves ~8×)\n",
        cdf.quantile(0.5).unwrap_or(0.0)
    );
    out += &format!(
        "fraction of locations where stale MRT loses to the baseline: {:.0}%\n",
        100.0 * cdf.eval(1.0)
    );
    out += "paper footnote 5: \"the performance difference is negligible across other media\"\n";
    out
}

/// Ablation 2: decode success, out-of-band vs in-band reader, sweeping
/// jam strength.
pub fn reader_placement(quick: bool) -> String {
    let reps = if quick { 3 } else { 10 };
    let msg: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let mut out = crate::header("Ablation — out-of-band reader vs in-band reader under CIB jam");
    out += &format!(
        "{:>14}  {:>14}  {:>14}\n",
        "jam amp (√W)", "OOB success", "in-band succ."
    );
    for jam_amp in [0.0, 1e-3, 1e-2, 5e-2, 2e-1] {
        let jam: Vec<JamTone> = ivn_core::PAPER_OFFSETS_HZ
            .iter()
            .enumerate()
            .map(|(i, &df)| JamTone {
                freq_hz: 915e6 + df,
                amplitude: jam_amp,
                phase: i as f64 * 0.7,
            })
            .collect();
        let count = |cfg: OobReaderConfig, seed: u64| -> usize {
            let reader = OobReader::new(cfg);
            (0..reps)
                .filter(|&r| {
                    let mut rng = StdRng::seed_from_u64(seed + r as u64);
                    reader
                        .receive_and_decode(&mut rng, 1e-4, &msg, 4, &jam, 2000)
                        .success
                })
                .count()
        };
        let oob = count(OobReaderConfig::paper_defaults(), 7000);
        let inband = count(OobReaderConfig::in_band_ablation(), 9000);
        out += &format!(
            "{:>14.3}  {:>11}/{:<2}  {:>11}/{:<2}\n",
            jam_amp, oob, reps, inband, reps
        );
    }
    out
}

/// Ablation 3: Eq. 9 in action — a wide-offset plan peaks just as high
/// but droops so fast the tag cannot decode the query at the peak.
pub fn flatness_constraint(_quick: bool) -> String {
    let link = LinkParams::paper_defaults();
    let query = Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    };
    let bits = query.encode();
    let runs = pie::encode_frame(&bits, &link.pie, true);
    let rate = 400e3;
    let profile = pie::rasterize(&runs, rate, 0.0);

    let mut rng = StdRng::seed_from_u64(43);
    let plans: [(&str, Vec<f64>); 3] = [
        ("paper (rms 82 Hz)", ivn_core::PAPER_OFFSETS_HZ.to_vec()),
        (
            "wide ×20 (rms 1.6 kHz)",
            ivn_core::PAPER_OFFSETS_HZ
                .iter()
                .map(|f| f * 20.0)
                .collect(),
        ),
        (
            "wide ×60 (rms 4.9 kHz)",
            ivn_core::PAPER_OFFSETS_HZ
                .iter()
                .map(|f| f * 60.0)
                .collect(),
        ),
    ];
    let mut out = crate::header("Ablation — query decodability vs frequency-plan RMS (Eq. 9)");
    out += &format!(
        "Eq. 9 bound at α=0.5, Δt≈{:.0} µs: rms ≤ {:.0} Hz\n\n",
        link.command_duration_s(&query) * 1e6,
        eq9_rms_bound(0.5, link.command_duration_s(&query))
    );
    out += &format!(
        "{:<24}  {:>10}  {:>12}  {:>12}\n",
        "plan", "rms (Hz)", "peak power", "query ok"
    );
    for (name, offsets) in plans {
        let mut ok = 0;
        let mut peak_acc = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let phases: Vec<f64> = (0..offsets.len())
                .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
                .collect();
            let env = CibEnvelope::new(&offsets, &phases);
            let (t_peak, peak) = env.peak_over_period(4096);
            peak_acc += peak * peak;
            let t0 = t_peak - profile.len() as f64 / rate / 2.0;
            let tag_env: Vec<f64> = profile
                .iter()
                .enumerate()
                .map(|(k, &p)| p * env.envelope(t0 + k as f64 / rate))
                .collect();
            if pie::decode_frame(&tag_env, rate)
                .map(|d| d == bits)
                .unwrap_or(false)
            {
                ok += 1;
            }
        }
        out += &format!(
            "{:<24}  {:>10.0}  {:>12.1}  {:>9}/{:<2}\n",
            name,
            rms_offset(&offsets),
            peak_acc / trials as f64,
            ok,
            trials
        );
    }
    out
}

/// Ablation 4: reader correlation vs number of averaged periods.
pub fn averaging_gain(quick: bool) -> String {
    let msg: Vec<bool> = (0..16).map(|i| (i * 5) % 7 < 3).collect();
    let mut out = crate::header("Ablation — coherent averaging gain at the reader (§5b)");
    out += &format!("{:>10}  {:>14}\n", "periods", "median corr");
    let trials = if quick { 5 } else { 15 };
    for periods in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut cfg = OobReaderConfig::paper_defaults();
        cfg.averaging_periods = periods;
        let reader = OobReader::new(cfg);
        let mut corrs: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(4400 + t as u64);
                reader
                    .receive_and_decode(&mut rng, 2.0e-6, &msg, 4, &[], 2000)
                    .correlation
            })
            .collect();
        corrs.sort_by(f64::total_cmp);
        out += &format!("{:>10}  {:>14.3}\n", periods, corrs[trials / 2]);
    }
    out += "SNR grows ~10·log10(K): the 1 s averaging window is what closes deep-tissue uplinks\n";
    out
}

/// Ablation 5: two-stage CIB (§3.7) — once the margin is known, a
/// duty-optimized steady plan keeps the harvester conducting longer than
/// the peak-chasing discovery plan.
pub fn two_stage(quick: bool) -> String {
    use ivn_core::freqsel::{optimize, FreqSelConfig};
    use ivn_core::twostage::{expected_duty, TwoStageCib};
    let mut cfg = FreqSelConfig::test_scale(8);
    if !quick {
        cfg.mc_draws = 48;
        cfg.iterations = 120;
    }
    let discovery = optimize(&cfg, 2020);
    let controller = TwoStageCib::new(discovery.clone(), cfg.clone(), 2021);
    let mut out = crate::header("Ablation — two-stage CIB: peak plan vs duty plan (§3.7)");
    out += &format!(
        "{:>10}  {:>16}  {:>16}  {:>12}\n",
        "margin", "discovery duty", "steady duty", "improvement"
    );
    for margin in [1.5, 2.0, 3.0, 5.0] {
        let steady = controller.steady_plan(margin);
        let mut rng = StdRng::seed_from_u64(2022);
        let d_disc = expected_duty(
            &discovery.offsets_hz,
            steady.threshold,
            cfg.mc_draws,
            cfg.grid,
            &mut rng,
        );
        out += &format!(
            "{:>10.1}  {:>16.4}  {:>16.4}  {:>11.2}×\n",
            margin,
            d_disc,
            steady.expected_duty,
            steady.expected_duty / d_disc.max(1e-12)
        );
    }
    out += "once the tag is awake, trading peak for conduction time harvests more energy\n";
    out
}

/// Ablation 6: adaptive frequency hopping (§3.7) against multipath
/// notches.
pub fn hopping(quick: bool) -> String {
    use ivn_core::cib::CibConfig;
    use ivn_core::hopping::{choose_center, ism_hop_set};
    use ivn_em::channel::ChannelModel;
    use ivn_em::multipath::MultipathChannel;
    let trials = if quick { 10 } else { 50 };
    let cib = CibConfig::paper_prototype_n(8);
    let mut improvements = Vec::with_capacity(trials);
    for t in 0..trials {
        let channels: Vec<Box<dyn ChannelModel + Send + Sync>> = (0..8)
            .map(|k| {
                let mut r = StdRng::seed_from_u64(6000 + t as u64 * 17 + k);
                Box::new(MultipathChannel::rayleigh(&mut r, 8, 60e-9, 1.0))
                    as Box<dyn ChannelModel + Send + Sync>
            })
            .collect();
        improvements.push(choose_center(&cib, &channels, &ism_hop_set()).improvement());
    }
    improvements.sort_by(f64::total_cmp);
    let mut out = crate::header("Ablation — adaptive centre-frequency hopping (§3.7)");
    out += &format!(
        "delivered-power improvement over staying at 915 MHz ({trials} multipath draws):\n  median {:.2}×   p90 {:.2}×   max {:.2}×\n",
        improvements[trials / 2],
        improvements[trials * 9 / 10],
        improvements[trials - 1]
    );
    out += "hopping rescues deployments whose whole band lands in a fade\n";
    out
}

/// Ablation 7: clock-distribution fault injection — what loses first
/// when the Octoclock is removed.
pub fn clock_faults(_quick: bool) -> String {
    use ivn_rfid::pie::PieParams;
    use ivn_sdr::clock::ClockDistribution;
    let pie = PieParams::paper_defaults();
    let cases = [
        ("Octoclock (5 ns PPS)", ClockDistribution::octoclock()),
        (
            "loose trigger (1 µs)",
            ClockDistribution {
                pps_jitter_rms_s: 1e-6,
                residual_ppm_rms: 0.0,
            },
        ),
        (
            "very loose (20 µs)",
            ClockDistribution {
                pps_jitter_rms_s: 20e-6,
                residual_ppm_rms: 0.0,
            },
        ),
        ("free running", ClockDistribution::free_running()),
    ];
    let mut out = crate::header("Ablation — clock-distribution fault injection");
    out += &format!(
        "{:<22}  {:>18}  {:>22}\n",
        "distribution", "sync commands?", "freq error @915 MHz"
    );
    for (name, clock) in cases {
        let sync = clock.supports_synchronous_commands(pie.pw_s);
        out += &format!(
            "{:<22}  {:>18}  {:>18.0} Hz\n",
            name,
            if sync { "yes" } else { "NO" },
            clock.residual_ppm_rms * 1e-6 * 915e6,
        );
    }
    out += "CIB needs synchronized *commands* (timing), not synchronized phases;\nfree-running oscillators also break the Δf plan (kHz ≫ the 7–137 Hz offsets)\n";
    out
}

/// All ablations concatenated.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    out += &coherent_vs_baseline(quick);
    out += &reader_placement(quick);
    out += &flatness_constraint(quick);
    out += &averaging_gain(quick);
    out += &two_stage(quick);
    out += &hopping(quick);
    out += &clock_faults(quick);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn flatness_ablation_shows_cliff() {
        let s = super::flatness_constraint(true);
        // The paper plan must decode every trial; the widest plan must
        // fail most trials.
        let rows: Vec<&str> = s.lines().filter(|l| l.contains("/20")).collect();
        assert_eq!(rows.len(), 3, "{s}");
        assert!(rows[0].contains("20/20"), "paper plan failed: {}", rows[0]);
        let worst: usize = rows[2]
            .split('/')
            .next()
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(worst < 10, "wide plan decoded too often: {}", rows[2]);
    }

    #[test]
    fn averaging_monotone() {
        let s = super::averaging_gain(true);
        assert!(s.contains("64"));
    }

    #[test]
    fn reader_ablation_smoke() {
        let s = super::reader_placement(true);
        assert!(s.contains("OOB success"));
    }

    #[test]
    fn two_stage_improves_duty() {
        let s = super::two_stage(true);
        // Every improvement figure must be ≥ 1.
        for line in s.lines().filter(|l| l.trim_end().ends_with('×')) {
            let imp: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('×')
                .parse()
                .unwrap();
            assert!(imp >= 0.99, "{line}");
        }
    }

    #[test]
    fn hopping_median_improvement_positive() {
        let s = super::hopping(true);
        assert!(s.contains("median"));
    }

    #[test]
    fn clock_faults_table() {
        let s = super::clock_faults(true);
        assert!(s.contains("Octoclock"));
        assert!(s.contains("NO"));
    }
}
