//! Fig. 6 — CDFs of the 5-antenna peak power gain for the best and worst
//! frequency combinations under random channel conditions.

use ivn_core::experiment::peak_gain_cdf;
use ivn_core::freqsel::{optimize, pessimize, FreqSelConfig};

/// Regenerates Fig. 6. `quick` trims the Monte-Carlo counts.
pub fn run(quick: bool) -> String {
    let (trials, grid) = if quick { (200, 1024) } else { (2000, 4096) };
    let mut cfg = FreqSelConfig::test_scale(5);
    if !quick {
        cfg.mc_draws = 96;
        cfg.iterations = 200;
        cfg.restarts = 6;
    }
    let best = optimize(&cfg, 2018);
    let worst = pessimize(&cfg, 2018);
    let best_cdf = peak_gain_cdf(&best.offsets_hz, trials, grid, 606);
    let worst_cdf = peak_gain_cdf(&worst.offsets_hz, trials, grid, 606);

    let mut out = crate::header("Fig. 6 — CDF of 5-antenna peak power gain: best vs worst Δf set");
    out += &format!(
        "best plan:  {:?} Hz (E[peak] = {:.2} of 5)\n",
        best.offsets_hz, best.expected_peak
    );
    out += &format!(
        "worst plan: {:?} Hz (E[peak] = {:.2} of 5)\n\n",
        worst.offsets_hz, worst.expected_peak
    );
    out += &format!(
        "{:>12}  {:>12}  {:>12}\n",
        "gain", "CDF(best)", "CDF(worst)"
    );
    for k in 0..=16 {
        let gain = 8.0 + k as f64; // the paper's 8..24 x-axis
        out += &format!(
            "{:>12.0}  {:>12.3}  {:>12.3}\n",
            gain,
            best_cdf.eval(gain),
            worst_cdf.eval(gain)
        );
    }
    out += &format!(
        "\nmedians: best {:.1} / worst {:.1} (optimal N² = 25)\n",
        best_cdf.quantile(0.5).unwrap_or(0.0),
        worst_cdf.quantile(0.5).unwrap_or(0.0),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn best_dominates_worst() {
        let s = super::run(true);
        assert!(s.contains("medians"));
        // Parse the medians line and check dominance.
        let line = s.lines().find(|l| l.starts_with("medians")).unwrap();
        let nums: Vec<f64> = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!(nums[0] > nums[1], "best {} worst {}", nums[0], nums[1]);
    }
}
