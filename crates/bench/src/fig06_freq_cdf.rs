//! Fig. 6 — CDFs of the peak power gain for the best and worst frequency
//! combinations under random channel conditions.

use ivn_core::experiment::gain_cdf_experiment;
use ivn_core::scenario::Scenario;

/// Renders Fig. 6 for a `gain_cdf` scenario: the Eq. 10 search's best
/// and worst plans and both gain CDFs.
pub fn render(s: &Scenario, quick: bool) -> String {
    let r = gain_cdf_experiment(s, quick);
    let n = r.best.offsets_hz.len();

    let mut out = crate::header(&format!(
        "Fig. 6 — CDF of {n}-antenna peak power gain: best vs worst Δf set"
    ));
    out += &format!(
        "best plan:  {:?} Hz (E[peak] = {:.2} of {n})\n",
        r.best.offsets_hz, r.best.expected_peak
    );
    out += &format!(
        "worst plan: {:?} Hz (E[peak] = {:.2} of {n})\n\n",
        r.worst.offsets_hz, r.worst.expected_peak
    );
    out += &format!(
        "{:>12}  {:>12}  {:>12}\n",
        "gain", "CDF(best)", "CDF(worst)"
    );
    for k in 0..=16 {
        let gain = 8.0 + k as f64; // the paper's 8..24 x-axis
        out += &format!(
            "{:>12.0}  {:>12.3}  {:>12.3}\n",
            gain,
            r.best_cdf.eval(gain),
            r.worst_cdf.eval(gain)
        );
    }
    out += &format!(
        "\nmedians: best {:.1} / worst {:.1} (optimal N² = {})\n",
        r.best_cdf.quantile(0.5).unwrap_or(0.0),
        r.worst_cdf.quantile(0.5).unwrap_or(0.0),
        n * n,
    );
    out
}

/// Regenerates Fig. 6 from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig6").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn best_dominates_worst() {
        let s = super::run(true);
        assert!(s.contains("medians"));
        // Parse the medians line and check dominance.
        let line = s.lines().find(|l| l.starts_with("medians")).unwrap();
        let nums: Vec<f64> = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!(nums[0] > nums[1], "best {} worst {}", nums[0], nums[1]);
    }
}
