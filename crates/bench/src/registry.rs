//! The scenario registry: one dispatch point from a declarative
//! [`Scenario`] to the figure renderer that knows how to present its
//! kind. `reproduce` is a thin shell over this — a legacy target name
//! resolves to a built-in scenario and a `--scenario file.json` run
//! parses the file, and both land here.

use ivn_core::scenario::{evaluate, Scenario, ScenarioKind};
use ivn_runtime::json::ToJson;

/// The built-in scenario behind each `reproduce` target, in `all` order.
pub fn builtin(name: &str) -> Option<Scenario> {
    ivn_core::scenario::builtin(name)
}

/// Every built-in scenario name, in `reproduce all` order.
pub fn builtin_names() -> &'static [&'static str] {
    &ivn_core::scenario::BUILTIN_NAMES
}

/// Renders any scenario through the figure module registered for its
/// kind. Kinds without bespoke presentation (power sessions,
/// multi-sensor campaigns, and anything a generated campaign produces)
/// fall back to the uniform metrics report.
pub fn render(s: &Scenario, quick: bool) -> Result<String, String> {
    Ok(match &s.kind {
        ScenarioKind::Diode => crate::fig02_diode::run(quick),
        ScenarioKind::TissueLoss => crate::fig03_tissue_loss::run(quick),
        ScenarioKind::Conduction => crate::fig04_conduction::run(quick),
        ScenarioKind::GainCdf { .. } => crate::fig06_freq_cdf::render(s, quick),
        ScenarioKind::GainVsAntennas { .. } => crate::fig09_gain_vs_antennas::render(s, quick),
        ScenarioKind::GainStability { .. } => crate::fig10_gain_stability::render(s, quick),
        ScenarioKind::MediaGain => crate::fig11_media::render(s, quick),
        ScenarioKind::RatioCdf => crate::fig12_ratio_cdf::render(s, quick),
        ScenarioKind::Range { .. } => crate::fig13_range::render(s, quick),
        ScenarioKind::InVivo => crate::fig15_invivo::render(s, quick),
        ScenarioKind::FreqPlanSearch { .. } => crate::tbl_freqs::render(s, quick),
        ScenarioKind::Ablations => crate::ablations::run(quick),
        ScenarioKind::Pipeline => crate::pipeline::run(quick),
        ScenarioKind::Inventory { .. } => crate::inventory::render(s, quick)?,
        ScenarioKind::PowerSession { .. } | ScenarioKind::MultiSensor { .. } => {
            metrics_report(s, quick)?
        }
    })
}

/// The uniform per-scenario report: campaign metrics as a small table
/// plus the machine-readable JSON line the campaign driver aggregates.
pub fn metrics_report(s: &Scenario, quick: bool) -> Result<String, String> {
    let m = evaluate(s, quick)?;
    let mut out = crate::header(&format!(
        "scenario '{}' ({}, {} antennas)",
        s.name,
        s.kind.type_name(),
        s.array.n_antennas
    ));
    out += &format!("{:>10} trials\n", m.trials);
    if let Some(g) = m.gain_summary() {
        out += &format!(
            "{:>10}  gain over 1 antenna: median {:.1} dB [p10 {:.1}, p90 {:.1}]\n",
            "", g.median, g.p10, g.p90
        );
    }
    if let Some(t) = m.time_summary() {
        out += &format!(
            "{:>10}  time-to-power: median {:.1} ms [p10 {:.1}, p90 {:.1}]\n",
            "",
            t.median * 1e3,
            t.p10 * 1e3,
            t.p90 * 1e3
        );
    }
    out += &format!(
        "{:>10}  powered {:.0}%, decoded {:.0}%\n",
        "",
        100.0 * m.powered_frac(),
        100.0 * m.decode_frac()
    );
    out += &format!("\n{}\n", m.to_json().dump());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_renders() {
        for name in builtin_names() {
            let s = builtin(name).unwrap_or_else(|| panic!("missing builtin {name}"));
            // Cheap kinds only — the expensive ones are covered by the
            // golden figure tests; here we pin the dispatch itself.
            if matches!(
                s.kind,
                ScenarioKind::PowerSession { .. } | ScenarioKind::MultiSensor { .. }
            ) {
                let out = render(&s, true).expect(name);
                assert!(out.contains(&s.name), "{name}: {out}");
                assert!(out.contains("powered"), "{name}: {out}");
            }
        }
    }

    #[test]
    fn registry_names_resolve() {
        for name in builtin_names() {
            assert!(builtin(name).is_some(), "{name}");
        }
        assert!(builtin("nope").is_none());
    }
}
