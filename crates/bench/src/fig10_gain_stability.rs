//! Fig. 10 — 10-antenna power gain vs receive-antenna depth (a) and
//! orientation (b): the gain is stable because CIB is channel-blind.

use ivn_core::experiment::{gain_vs_depth, gain_vs_orientation};

/// Regenerates Fig. 10a and 10b.
pub fn run(quick: bool) -> String {
    let trials = if quick { 30 } else { 100 };
    let depths = [0.0, 0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20];
    let orientations: Vec<f64> = (0..9)
        .map(|k| k as f64 * std::f64::consts::TAU / 8.0 / 2.0)
        .collect();

    let mut out = crate::header("Fig. 10a — power gain vs depth in water (10 antennas)");
    out += &format!(
        "{:>12}  {:>10}  {:>10}  {:>10}\n",
        "depth (cm)", "p10", "median", "p90"
    );
    for r in gain_vs_depth(&depths, trials, 1010) {
        out += &format!(
            "{:>12.1}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.parameter * 100.0,
            r.gain.p10,
            r.gain.median,
            r.gain.p90
        );
    }

    out += &crate::header("Fig. 10b — power gain vs orientation (10 antennas)");
    out += &format!(
        "{:>12}  {:>10}  {:>10}  {:>10}\n",
        "theta (rad)", "p10", "median", "p90"
    );
    for r in gain_vs_orientation(&orientations, trials, 1011) {
        out += &format!(
            "{:>12.2}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.parameter, r.gain.p10, r.gain.median, r.gain.p90
        );
    }
    out += "\npaper: gain stays ~constant across depth and orientation (channel-blind)\n";
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_panels_present() {
        let s = super::run(true);
        assert!(s.contains("Fig. 10a"));
        assert!(s.contains("Fig. 10b"));
        assert!(s.lines().count() > 20);
    }
}
