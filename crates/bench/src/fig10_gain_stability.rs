//! Fig. 10 — 10-antenna power gain vs receive-antenna depth (a) and
//! orientation (b): the gain is stable because CIB is channel-blind.

use ivn_core::experiment::{gain_vs_depth, gain_vs_orientation};
use ivn_core::scenario::Scenario;

/// Renders Fig. 10a and 10b for a `gain_stability` scenario.
pub fn render(s: &Scenario, quick: bool) -> String {
    let n = s.array.n_antennas;
    let mut out = crate::header(&format!(
        "Fig. 10a — power gain vs depth in water ({n} antennas)"
    ));
    out += &format!(
        "{:>12}  {:>10}  {:>10}  {:>10}\n",
        "depth (cm)", "p10", "median", "p90"
    );
    for r in gain_vs_depth(s, quick) {
        out += &format!(
            "{:>12.1}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.parameter * 100.0,
            r.gain.p10,
            r.gain.median,
            r.gain.p90
        );
    }

    out += &crate::header(&format!(
        "Fig. 10b — power gain vs orientation ({n} antennas)"
    ));
    out += &format!(
        "{:>12}  {:>10}  {:>10}  {:>10}\n",
        "theta (rad)", "p10", "median", "p90"
    );
    for r in gain_vs_orientation(s, quick) {
        out += &format!(
            "{:>12.2}  {:>10.1}  {:>10.1}  {:>10.1}\n",
            r.parameter, r.gain.p10, r.gain.median, r.gain.p90
        );
    }
    out += "\npaper: gain stays ~constant across depth and orientation (channel-blind)\n";
    out
}

/// Regenerates Fig. 10a and 10b from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig10").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_panels_present() {
        let s = super::run(true);
        assert!(s.contains("Fig. 10a"));
        assert!(s.contains("Fig. 10b"));
        assert!(s.lines().count() > 20);
    }
}
