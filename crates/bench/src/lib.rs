//! # ivn-bench — the figure-reproduction harness
//!
//! One module per table/figure of the paper's evaluation. Each module
//! exposes a `run(quick: bool) -> String` that regenerates the figure's
//! rows/series as plain text (the `reproduce` binary prints them;
//! integration tests assert on the parsed shapes). `quick = true` trims
//! Monte-Carlo counts for CI-speed runs; `quick = false` uses
//! paper-scale trial counts.
//!
//! The mapping from figures to modules is the experiment index in
//! DESIGN.md §4.

pub mod fig02_diode;
pub mod fig03_tissue_loss;
pub mod fig04_conduction;
pub mod fig06_freq_cdf;
pub mod fig09_gain_vs_antennas;
pub mod fig10_gain_stability;
pub mod fig11_media;
pub mod fig12_ratio_cdf;
pub mod fig13_range;
pub mod fig15_invivo;
pub mod tbl_freqs;

/// Ablation studies for the design choices DESIGN.md calls out.
pub mod ablations;

/// Scenario registry: dispatches any [`ivn_core::scenario::Scenario`]
/// to the figure module that renders its kind.
pub mod registry;

/// Mass-campaign driver: directories of scenario files through the
/// worker pool, with a deterministic aggregate.
pub mod campaign;

/// End-to-end sample-path chain (freqsel → sdr → em → harvester → rfid).
pub mod pipeline;

/// Population-scale inventory: the `inventory` reproduce target and the
/// worker-pool fleet behind the runtime bench's throughput numbers.
pub mod inventory;

/// Offline analyzer for Chrome Trace Event JSON produced under `--trace`.
pub mod trace_analysis;

/// Perf-regression sentinel: compares BENCH_runtime.json against the
/// committed BENCH_baseline.json with per-metric tolerance bands.
pub mod sentinel;

/// Formats a row of columns with fixed widths for terminal tables.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// A horizontal rule sized for `n` columns of `width`.
pub fn rule(n: usize, width: usize) -> String {
    "-".repeat(n * (width + 2))
}

/// Standard header printed before each figure's output.
pub fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}
