//! §5 — the one-time frequency-plan optimization that produced the
//! paper's offsets {0, 7, 20, 49, 68, 73, 90, 113, 121, 137} Hz.

use ivn_core::freqsel::{expected_peak, optimize};
use ivn_core::scenario::{Scenario, ScenarioKind};
use ivn_core::waveform::{eq9_rms_bound, rms_offset};
use ivn_runtime::rng::StdRng;

/// Renders the Eq. 10 optimization for a `freq_plan_search` scenario and
/// compares the result to the paper's published plan.
pub fn render(s: &Scenario, quick: bool) -> String {
    let ScenarioKind::FreqPlanSearch { freqsel } = &s.kind else {
        panic!(
            "tbl_freqs needs a 'freq_plan_search' scenario, got '{}'",
            s.kind.type_name()
        )
    };
    let cfg = freqsel.resolve(quick);
    let plan = optimize(&cfg, s.seed);
    let mut rng = StdRng::seed_from_u64(42);
    let paper_score = expected_peak(&ivn_core::PAPER_OFFSETS_HZ, cfg.mc_draws, 2048, &mut rng);
    let n = cfg.n_antennas;

    let mut out = crate::header("§5 — CIB frequency-plan optimization (Eq. 10)");
    out += &format!(
        "constraint: rms(Δf) ≤ {:.0} Hz (α = 0.5, Δt = 800 µs)\n\n",
        eq9_rms_bound(0.5, 800e-6)
    );
    out += &format!(
        "paper plan:     {:?}\n  rms {:>6.1} Hz, E[peak] {:.2} of {n}\n",
        ivn_core::PAPER_OFFSETS_HZ,
        rms_offset(&ivn_core::PAPER_OFFSETS_HZ),
        paper_score
    );
    out += &format!(
        "optimized plan: {:?}\n  rms {:>6.1} Hz, E[peak] {:.2} of {n}\n",
        plan.offsets_hz,
        plan.rms_hz(),
        plan.expected_peak
    );
    out += &format!(
        "\nexpected peak power gain of optimized plan: {:.0}× (ceiling {}×)\n",
        plan.expected_power_gain(),
        n * n,
    );
    out
}

/// Re-runs the optimization from the built-in scenario (N = 10,
/// RMS ≤ 199 Hz, paper effort levels).
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("freqs").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn optimized_plan_feasible_and_competitive() {
        let s = super::run(true);
        assert!(s.contains("optimized plan"));
        assert!(s.contains("rms"));
    }
}
