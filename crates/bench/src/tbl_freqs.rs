//! §5 — the one-time frequency-plan optimization that produced the
//! paper's offsets {0, 7, 20, 49, 68, 73, 90, 113, 121, 137} Hz.

use ivn_core::freqsel::{expected_peak, optimize, FreqSelConfig};
use ivn_core::waveform::{eq9_rms_bound, rms_offset};
use ivn_runtime::rng::StdRng;

/// Re-runs the Eq. 10 optimization at paper scale (N = 10, RMS ≤ 199 Hz)
/// and compares the result to the paper's published plan.
pub fn run(quick: bool) -> String {
    let mut cfg = FreqSelConfig::paper_scale();
    if quick {
        cfg.mc_draws = 32;
        cfg.iterations = 60;
        cfg.restarts = 3;
        cfg.grid = 512;
    }
    let plan = optimize(&cfg, 5150);
    let mut rng = StdRng::seed_from_u64(42);
    let paper_score = expected_peak(&ivn_core::PAPER_OFFSETS_HZ, cfg.mc_draws, 2048, &mut rng);

    let mut out = crate::header("§5 — CIB frequency-plan optimization (Eq. 10)");
    out += &format!(
        "constraint: rms(Δf) ≤ {:.0} Hz (α = 0.5, Δt = 800 µs)\n\n",
        eq9_rms_bound(0.5, 800e-6)
    );
    out += &format!(
        "paper plan:     {:?}\n  rms {:>6.1} Hz, E[peak] {:.2} of 10\n",
        ivn_core::PAPER_OFFSETS_HZ,
        rms_offset(&ivn_core::PAPER_OFFSETS_HZ),
        paper_score
    );
    out += &format!(
        "optimized plan: {:?}\n  rms {:>6.1} Hz, E[peak] {:.2} of 10\n",
        plan.offsets_hz,
        plan.rms_hz(),
        plan.expected_peak
    );
    out += &format!(
        "\nexpected peak power gain of optimized plan: {:.0}× (ceiling 100×)\n",
        plan.expected_power_gain()
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn optimized_plan_feasible_and_competitive() {
        let s = super::run(true);
        assert!(s.contains("optimized plan"));
        assert!(s.contains("rms"));
    }
}
