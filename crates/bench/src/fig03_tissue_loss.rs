//! Fig. 3 — signal power loss in tissues vs in air (log scale).
//!
//! The paper's right panel: normalized loss as a function of distance,
//! polynomial in air and exponential once the wave enters tissue.

use ivn_em::layered::{single_medium_path, LayeredPath};
use ivn_em::medium::Medium;

/// Regenerates Fig. 3: path loss vs distance for pure air and for an
/// air-then-muscle path (1 GHz-band carrier).
pub fn run(_quick: bool) -> String {
    const F: f64 = 915e6;
    let mut out = crate::header("Fig. 3 — signal loss: air vs tissue (dB, normalized to 1 m)");
    out += &format!(
        "{:>10}  {:>12}  {:>16}\n",
        "dist (cm)", "air (dB)", "air+tissue (dB)"
    );
    // Air leg fixed at 10 cm for the tissue curve; extra distance goes
    // into muscle — the paper's d ≪ r regime.
    for k in 1..=15 {
        let extra_cm = 2.0 * k as f64;
        let air_only = LayeredPath::free_space(0.10 + extra_cm / 100.0).path_loss_db(F);
        let tissue = single_medium_path(0.10, Medium::muscle(), extra_cm / 100.0).path_loss_db(F);
        out += &format!("{:>10.0}  {:>12.2}  {:>16.2}\n", extra_cm, air_only, tissue);
    }
    out += &format!(
        "\nmuscle bulk loss: {:.2} dB/cm (paper cites 2.3-6.9 dB/cm); air-tissue boundary: {:.1} dB (paper: 3-5 dB)\n",
        Medium::muscle().loss_db_per_cm(F),
        ivn_em::boundary::boundary_loss_db(&Medium::air(), &Medium::muscle(), F),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tissue_loss_dominates() {
        let s = super::run(true);
        // At the largest distance the tissue column must exceed air by
        // tens of dB; just smoke-check content and monotonic growth.
        assert!(s.contains("dB/cm"));
        assert!(s.lines().count() > 15);
    }
}
