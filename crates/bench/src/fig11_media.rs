//! Fig. 11 — median power gain across media: 10-antenna CIB (purple)
//! vs the blind 10-antenna baseline (green), both over a single antenna.

use ivn_core::experiment::gain_across_media;
use ivn_core::scenario::Scenario;

/// Renders Fig. 11 for a `media_gain` scenario over air, water, gastric
/// fluid, intestinal fluid, steak, bacon and chicken. The paper runs 100
/// experiments.
pub fn render(s: &Scenario, quick: bool) -> String {
    let rows = gain_across_media(s, quick);
    let n = s.array.n_antennas;
    let mut out = crate::header(&format!(
        "Fig. 11 — gain across media: CIB vs {n}-antenna baseline"
    ));
    out += &format!(
        "{:<18}  {:>22}  {:>22}\n",
        "medium", "CIB med [p10,p90]", "baseline med [p10,p90]"
    );
    for r in &rows {
        out += &format!(
            "{:<18}  {:>7.1} [{:>5.1},{:>6.1}]  {:>7.1} [{:>5.1},{:>6.1}]\n",
            r.medium,
            r.cib.median,
            r.cib.p10,
            r.cib.p90,
            r.baseline.median,
            r.baseline.p10,
            r.baseline.p90
        );
    }
    let mean_cib: f64 = rows.iter().map(|r| r.cib.median).sum::<f64>() / rows.len() as f64;
    let mean_base: f64 = rows.iter().map(|r| r.baseline.median).sum::<f64>() / rows.len() as f64;
    out += &format!(
        "\npaper: CIB ≈ 80×, baseline ≈ 10× in every medium (≈ 8× apart)\nmeasured means: CIB {mean_cib:.0}×, baseline {mean_base:.0}× ({:.1}× apart)\n",
        mean_cib / mean_base
    );
    out
}

/// Regenerates Fig. 11 from the built-in scenario.
pub fn run(quick: bool) -> String {
    render(
        &ivn_core::scenario::builtin("fig11").expect("builtin"),
        quick,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn seven_media() {
        let s = super::run(true);
        for m in [
            "air",
            "water",
            "gastric",
            "intestinal",
            "steak",
            "bacon",
            "chicken",
        ] {
            assert!(s.contains(m), "missing {m}");
        }
    }
}
