#![allow(missing_docs)]
//! Criterion benches for the full IVN session: power-up + downlink +
//! uplink through the out-of-band reader, at several antenna counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ivn_core::body::{Placement, TagSpec};
use ivn_core::system::{IvnSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_session");
    group.sample_size(20);
    for &n in &[1usize, 4, 8] {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(n, TagSpec::standard()));
        let placement = Placement::free_space(3.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                sys.run_session(&mut rng, black_box(&placement))
            })
        });
    }
    group.finish();
}

fn bench_water_session(c: &mut Criterion) {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
    let placement = Placement::water_tank(0.10);
    let mut group = c.benchmark_group("water_session");
    group.sample_size(20);
    group.bench_function("std_tag_10cm", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(13);
            sys.run_session(&mut rng, black_box(&placement))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session, bench_water_session);
criterion_main!(benches);
