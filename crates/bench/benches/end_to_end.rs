#![allow(missing_docs)]
//! Benches for the full IVN session: power-up + downlink + uplink through
//! the out-of-band reader, at several antenna counts. Runs on the in-tree
//! `ivn_runtime::bench` harness (`cargo bench --bench end_to_end`).

use ivn_core::body::{Placement, TagSpec};
use ivn_core::system::{IvnSystem, SystemConfig};
use ivn_runtime::bench::{black_box, Bench};
use ivn_runtime::rng::StdRng;

fn bench_session(b: &mut Bench) {
    for &n in &[1usize, 4, 8] {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(n, TagSpec::standard()));
        let placement = Placement::free_space(3.0);
        b.bench(&format!("full_session/{n}"), || {
            let mut rng = StdRng::seed_from_u64(11);
            sys.run_session(&mut rng, black_box(&placement))
        });
    }
}

fn bench_water_session(b: &mut Bench) {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
    let placement = Placement::water_tank(0.10);
    b.bench("water_session/std_tag_10cm", || {
        let mut rng = StdRng::seed_from_u64(13);
        sys.run_session(&mut rng, black_box(&placement))
    });
}

fn main() {
    let mut b = Bench::new();
    bench_session(&mut b);
    bench_water_session(&mut b);
}
