#![allow(missing_docs)]
//! Criterion microbenches for the DSP kernels on the hot paths of the
//! simulator: FFT, FIR filtering, envelope peak search, and correlation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ivn_core::waveform::CibEnvelope;
use ivn_dsp::complex::Complex64;
use ivn_dsp::correlate::normalized_xcorr;
use ivn_dsp::fft::fft;
use ivn_dsp::filter::{design_lowpass, FirFilter};
use ivn_dsp::window::Window;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(i as f64 * 0.1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fft(black_box(&mut d));
                d
            })
        });
    }
    group.finish();
}

fn bench_fir(c: &mut Criterion) {
    let taps = design_lowpass(50e3, 400e3, 63, Window::Hamming);
    let input: Vec<Complex64> = (0..4096)
        .map(|i| Complex64::cis(i as f64 * 0.03))
        .collect();
    c.bench_function("fir_63tap_4096", |b| {
        b.iter(|| {
            let mut f = FirFilter::new(taps.clone());
            f.process_block(black_box(&input))
        })
    });
}

fn bench_envelope_peak(c: &mut Criterion) {
    let mut group = c.benchmark_group("cib_peak_search");
    for &n in &[5usize, 10] {
        let offsets = &ivn_core::PAPER_OFFSETS_HZ[..n];
        let phases: Vec<f64> = (0..n).map(|i| i as f64 * 0.7).collect();
        let env = CibEnvelope::new(offsets, &phases);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(&env).peak_over_period(4096))
        });
    }
    group.finish();
}

fn bench_correlation(c: &mut Criterion) {
    let template: Vec<Complex64> = (0..96)
        .map(|i| Complex64::from_real(if (i / 8) % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let haystack: Vec<Complex64> = (0..4000)
        .map(|i| Complex64::cis(i as f64 * 0.01))
        .collect();
    c.bench_function("normalized_xcorr_4000x96", |b| {
        b.iter(|| normalized_xcorr(black_box(&haystack), black_box(&template)))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_fir,
    bench_envelope_peak,
    bench_correlation
);
criterion_main!(benches);
