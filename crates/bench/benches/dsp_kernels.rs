#![allow(missing_docs)]
//! Microbenches for the DSP kernels on the hot paths of the simulator:
//! FFT, FIR filtering, envelope peak search, and correlation. Runs on the
//! in-tree `ivn_runtime::bench` harness (`cargo bench --bench dsp_kernels`).

use ivn_core::waveform::CibEnvelope;
use ivn_dsp::complex::Complex64;
use ivn_dsp::correlate::normalized_xcorr;
use ivn_dsp::fft::fft;
use ivn_dsp::filter::{design_lowpass, FirFilter};
use ivn_dsp::window::Window;
use ivn_runtime::bench::{black_box, Bench};

fn bench_fft(b: &mut Bench) {
    for &n in &[256usize, 1024, 4096] {
        let data: Vec<Complex64> = (0..n).map(|i| Complex64::cis(i as f64 * 0.1)).collect();
        b.bench(&format!("fft/{n}"), || {
            let mut d = data.clone();
            fft(black_box(&mut d));
            d
        });
    }
}

fn bench_fir(b: &mut Bench) {
    let taps = design_lowpass(50e3, 400e3, 63, Window::Hamming);
    let input: Vec<Complex64> = (0..4096).map(|i| Complex64::cis(i as f64 * 0.03)).collect();
    b.bench("fir_63tap_4096", || {
        let mut f = FirFilter::new(taps.clone());
        f.process_block(black_box(&input))
    });
}

fn bench_envelope_peak(b: &mut Bench) {
    for &n in &[5usize, 10] {
        let offsets = &ivn_core::PAPER_OFFSETS_HZ[..n];
        let phases: Vec<f64> = (0..n).map(|i| i as f64 * 0.7).collect();
        let env = CibEnvelope::new(offsets, &phases);
        b.bench(&format!("cib_peak_search/{n}"), || {
            black_box(&env).peak_over_period(4096)
        });
    }
}

fn bench_correlation(b: &mut Bench) {
    let template: Vec<Complex64> = (0..96)
        .map(|i| Complex64::from_real(if (i / 8) % 2 == 0 { 1.0 } else { -1.0 }))
        .collect();
    let haystack: Vec<Complex64> = (0..4000).map(|i| Complex64::cis(i as f64 * 0.01)).collect();
    b.bench("normalized_xcorr_4000x96", || {
        normalized_xcorr(black_box(&haystack), black_box(&template))
    });
}

fn main() {
    let mut b = Bench::new();
    bench_fft(&mut b);
    bench_fir(&mut b);
    bench_envelope_peak(&mut b);
    bench_correlation(&mut b);
}
