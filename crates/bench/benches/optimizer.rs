#![allow(missing_docs)]
//! Benches for the Eq. 10 Monte-Carlo optimizer: the per-plan objective
//! evaluation and a full small-scale optimization. Runs on the in-tree
//! `ivn_runtime::bench` harness (`cargo bench --bench optimizer`).

use ivn_core::freqsel::{expected_peak, optimize, FreqSelConfig};
use ivn_runtime::bench::{black_box, Bench};
use ivn_runtime::rng::StdRng;

fn bench_objective(b: &mut Bench) {
    for &n in &[5usize, 10] {
        let offsets = &ivn_core::PAPER_OFFSETS_HZ[..n];
        b.bench(&format!("expected_peak/{n}"), || {
            let mut rng = StdRng::seed_from_u64(1);
            expected_peak(black_box(offsets), 32, 1024, &mut rng)
        });
    }
}

fn bench_optimize_small(b: &mut Bench) {
    let cfg = FreqSelConfig {
        n_antennas: 5,
        rms_limit_hz: 199.0,
        max_offset_hz: 160,
        mc_draws: 16,
        grid: 256,
        restarts: 2,
        iterations: 30,
    };
    b.bench("optimize_n5_small", || optimize(black_box(&cfg), 7));
}

fn main() {
    let mut b = Bench::new();
    bench_objective(&mut b);
    bench_optimize_small(&mut b);
}
