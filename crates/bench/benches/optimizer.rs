#![allow(missing_docs)]
//! Criterion benches for the Eq. 10 Monte-Carlo optimizer: the per-plan
//! objective evaluation and a full small-scale optimization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ivn_core::freqsel::{expected_peak, optimize, FreqSelConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_peak");
    for &n in &[5usize, 10] {
        let offsets = &ivn_core::PAPER_OFFSETS_HZ[..n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                expected_peak(black_box(offsets), 32, 1024, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_optimize_small(c: &mut Criterion) {
    let cfg = FreqSelConfig {
        n_antennas: 5,
        rms_limit_hz: 199.0,
        max_offset_hz: 160,
        mc_draws: 16,
        grid: 256,
        restarts: 2,
        iterations: 30,
    };
    c.bench_function("optimize_n5_small", |b| {
        b.iter(|| optimize(black_box(&cfg), 7))
    });
}

criterion_group!(benches, bench_objective, bench_optimize_small);
criterion_main!(benches);
