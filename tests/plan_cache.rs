//! Plan-cache semantics under fleet-scale load (ISSUE 9 satellite):
//! hit/miss observability, cold-vs-warm byte-identity, and
//! eviction/capacity behavior under a 1000-scenario fleet.
//!
//! Every test here touches the process-global [`PlanCache`], so they
//! serialize on one mutex and reset cache state at entry.

use ivn::core::freqsel::optimize;
use ivn::core::plancache::PlanCache;
use ivn::core::scenario::{ArraySpec, FreqPlan, FreqSelSpec, QuickFull};
use ivn::runtime::obs;
use std::sync::Mutex;

static GLOBAL_CACHE_LOCK: Mutex<()> = Mutex::new(());

/// A deliberately tiny Eq. 10 search so a 1000-consultation fleet runs
/// in test time.
fn tiny_spec(n_antennas: usize) -> FreqSelSpec {
    FreqSelSpec {
        n_antennas,
        rms_limit_hz: 199.0,
        max_offset_hz: 64,
        mc_draws: QuickFull::same(2),
        grid: QuickFull::same(32),
        restarts: QuickFull::same(1),
        iterations: QuickFull::same(2),
    }
}

fn optimizing_array(n_antennas: usize, seed: u64) -> ArraySpec {
    ArraySpec {
        n_antennas,
        plan: FreqPlan::Optimize {
            spec: tiny_spec(n_antennas),
            seed,
        },
        carrier_hz: ivn::core::BEAMFORMER_CARRIER_HZ,
        grid: 256,
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn warm_hits_are_byte_identical_to_cold_computation() {
    let _guard = GLOBAL_CACHE_LOCK.lock().unwrap();
    let cache = PlanCache::global();
    cache.clear();
    cache.reset_counters();
    let array = optimizing_array(3, 42);

    // Cold: cache disabled, direct computation.
    cache.set_enabled(false);
    let cold = array.cib(true);
    // Ground truth straight from the optimizer.
    let direct = match &array.plan {
        FreqPlan::Optimize { spec, seed } => optimize(&spec.resolve(true), *seed).offsets_hz,
        _ => unreachable!(),
    };
    assert!(cache.is_empty(), "disabled cache must not store");

    // Warm: enabled — miss then hit.
    cache.set_enabled(true);
    let miss = array.cib(true);
    let hit = array.cib(true);
    assert_eq!(bits(&cold.offsets_hz), bits(&direct));
    assert_eq!(bits(&miss.offsets_hz), bits(&direct));
    assert_eq!(bits(&hit.offsets_hz), bits(&direct), "hit != cold bytes");
    let (hits, misses) = cache.counters();
    assert_eq!((hits, misses), (1, 1));
}

#[test]
fn hit_and_miss_obs_counters_are_booked() {
    let _guard = GLOBAL_CACHE_LOCK.lock().unwrap();
    let cache = PlanCache::global();
    cache.clear();
    cache.set_enabled(true);
    obs::set_enabled(true);
    let before = obs::report();
    let array = optimizing_array(2, 7);
    array.cib(true); // miss
    array.cib(true); // hit
    array.cib(true); // hit
    let after = obs::report();
    obs::set_enabled(false);
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(delta("freqsel.plan_cache_misses"), 1);
    assert_eq!(delta("freqsel.plan_cache_hits"), 2);
}

#[test]
fn thousand_scenario_fleet_respects_capacity_and_stays_correct() {
    let _guard = GLOBAL_CACHE_LOCK.lock().unwrap();
    let cache = PlanCache::global();
    cache.clear();
    cache.reset_counters();
    cache.set_enabled(true);

    // A 1000-scenario fleet over 600 distinct array configs (seeds),
    // revisiting early configs at the tail: more distinct plans than
    // the global cache's capacity, so evictions must kick in, and the
    // revisits exercise the post-eviction recompute path.
    let fleet: Vec<ArraySpec> = (0..1000)
        .map(|i| {
            let seed = if i < 600 { i } else { i % 400 };
            optimizing_array(2, seed as u64)
        })
        .collect();

    for array in &fleet {
        let via_cache = array.cib(true);
        let direct = match &array.plan {
            FreqPlan::Optimize { spec, seed } => optimize(&spec.resolve(true), *seed).offsets_hz,
            _ => unreachable!(),
        };
        assert_eq!(
            bits(&via_cache.offsets_hz),
            bits(&direct),
            "cached plan diverged for seed scenario"
        );
    }

    let (hits, misses) = cache.counters();
    assert_eq!(hits + misses, 1000, "every consultation is counted");
    // 600 distinct keys: at least one miss each; the 400 revisits may
    // hit or (post-eviction) re-miss, but some locality must survive.
    assert!(misses >= 600, "misses {misses}");
    assert!(hits > 0, "no hits despite revisited configs");
    // Capacity is a hard bound even under churn.
    assert!(
        cache.len() <= 512,
        "cache grew past capacity: {}",
        cache.len()
    );
    cache.clear();
}
