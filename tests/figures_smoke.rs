//! Smoke tests over the figure-reproduction harness: every `reproduce`
//! target runs in quick mode and yields the paper's qualitative shape.

mod common;
use common::numeric_rows;

#[test]
fn fig2_threshold_blocks_small_voltages() {
    let s = ivn_bench::fig02_diode::run(true);
    // At 0.20 V the threshold diode passes zero current.
    let line = s
        .lines()
        .find(|l| l.trim_start().starts_with("0.20"))
        .unwrap();
    let cells: Vec<&str> = line.split_whitespace().collect();
    assert_eq!(cells[2].parse::<f64>().unwrap(), 0.0, "{line}");
}

#[test]
fn fig3_exponential_tissue_loss() {
    let s = ivn_bench::fig03_tissue_loss::run(true);
    // Parse the last row: tissue loss must exceed air loss by > 20 dB.
    let rows = numeric_rows(&s);
    let cells = rows.last().unwrap();
    assert!(cells[2] - cells[1] > 20.0, "{cells:?}");
}

#[test]
fn fig4_three_regimes() {
    let s = ivn_bench::fig04_conduction::run(true);
    assert!(s.contains("strong") && s.contains("marginal") && s.contains("dead"));
}

#[test]
fn fig6_separation() {
    let s = ivn_bench::fig06_freq_cdf::run(true);
    assert!(s.contains("best plan"));
    assert!(s.contains("worst plan"));
}

#[test]
fn fig9_monotone_gain() {
    let s = ivn_bench::fig09_gain_vs_antennas::run(true);
    let medians: Vec<f64> = numeric_rows(&s).iter().map(|cells| cells[2]).collect();
    assert_eq!(medians.len(), 10);
    assert!(medians[9] > 10.0 * medians[0], "{medians:?}");
}

#[test]
fn fig11_cib_dominates_in_every_medium() {
    let s = ivn_bench::fig11_media::run(true);
    for line in s
        .lines()
        .filter(|l| l.contains('[') && l.contains(']') && !l.contains("p10"))
    {
        // "medium  cib_med [p10, p90]  base_med [p10, p90]"
        let nums: Vec<f64> = line
            .split(|c: char| !c.is_ascii_digit() && c != '.')
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!(nums[0] > nums[3], "CIB should beat baseline: {line}");
    }
}

#[test]
fn fig12_headline_claims() {
    let s = ivn_bench::fig12_ratio_cdf::run(true);
    // "CIB wins at XX.X% of locations"
    let wins: f64 = s
        .lines()
        .find(|l| l.starts_with("CIB wins"))
        .and_then(|l| {
            l.split(['a', '%'])
                .find_map(|t| t.trim_start_matches('t').trim().parse().ok())
        })
        .unwrap();
    assert!(wins > 95.0, "win rate {wins}");
}

#[test]
fn invivo_pattern_matches_paper() {
    let s = ivn_bench::fig15_invivo::run(true);
    let rows: Vec<&str> = s.lines().filter(|l| l.starts_with("swine")).collect();
    assert_eq!(rows.len(), 4);
    let count = |row: &str| -> (usize, usize) {
        let frac = row.split_whitespace().find(|t| t.contains('/')).unwrap();
        let (a, b) = frac.split_once('/').unwrap();
        (a.parse().unwrap(), b.parse().unwrap())
    };
    let gastric_std = count(rows[0]);
    let gastric_mini = count(rows[1]);
    let subcut_std = count(rows[2]);
    let subcut_mini = count(rows[3]);
    // Paper §6.2 pattern: partial / none / all / all.
    assert!(
        gastric_std.0 > 0 && gastric_std.0 < gastric_std.1,
        "{rows:?}"
    );
    assert_eq!(gastric_mini.0, 0, "{rows:?}");
    assert_eq!(subcut_std.0, subcut_std.1, "{rows:?}");
    assert_eq!(subcut_mini.0, subcut_mini.1, "{rows:?}");
}

#[test]
fn freqs_optimization_feasible() {
    let s = ivn_bench::tbl_freqs::run(true);
    assert!(s.contains("optimized plan"));
    // The reported RMS values must respect the 199 Hz cap.
    for line in s.lines().filter(|l| l.trim_start().starts_with("rms")) {
        let rms: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(rms <= 199.0, "{line}");
    }
}

#[test]
fn ablations_run() {
    let s = ivn_bench::ablations::run(true);
    assert!(s.contains("stale"));
    assert!(s.contains("OOB success"));
    assert!(s.contains("Eq. 9"));
    assert!(s.contains("averaging"));
}
