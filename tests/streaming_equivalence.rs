//! Streaming-vs-batch equivalence for the end-to-end sample path.
//!
//! The block pipeline (ISSUE 5) must be *bit-identical* to the
//! whole-buffer oracle for every block size, not merely close: the same
//! FNV digest over the superposed rx stream, the same calibration
//! amplitudes to the last ulp, the same power-up sample index, the same
//! decoded bits. These tests pin that contract, plus thread-count
//! determinism of the parallel lane driver and the constant-memory
//! guarantee (per-stage peak footprint bounded by the block size).

use ivn_bench::pipeline::{outputs_batch, outputs_streaming, StreamOptions};
use ivn_dsp::complex::Complex64;
use ivn_runtime::rng::StdRng;
use ivn_sdr::bank::TxBank;
use ivn_sdr::clock::ClockDistribution;
use ivn_sdr::stream::{emit_oracle, BankStreamer};

const BLOCK_SIZES: [usize; 4] = [1, 7, 256, 4096];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn streaming_matches_batch_for_every_block_size() {
    let batch = outputs_batch(true, None);
    for block in BLOCK_SIZES {
        let opts = StreamOptions {
            block,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert_eq!(
            report.outputs, batch,
            "block={block}: streaming diverged from whole-buffer oracle"
        );
    }
}

#[test]
fn streaming_is_deterministic_across_thread_counts() {
    let reference = outputs_streaming(true, &StreamOptions::default());
    for threads in THREAD_COUNTS {
        let opts = StreamOptions {
            threads,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert_eq!(
            report.outputs, reference.outputs,
            "{threads} threads changed the streamed output"
        );
    }
}

#[test]
fn per_stage_footprint_is_bounded_by_block_size() {
    for block in BLOCK_SIZES {
        let opts = StreamOptions {
            block,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert!(!report.footprint.is_empty(), "footprint not recorded");
        for &(stage, peak) in &report.footprint {
            assert!(
                peak <= 2 * block,
                "block={block}: stage '{stage}' peak footprint {peak} exceeds 2x block"
            );
        }
    }
}

#[test]
fn rendered_report_matches_batch_renderer() {
    // The human-readable pipeline report must not change shape between the
    // streaming driver and the batch oracle (modulo the diagnostic lines,
    // which are off by default).
    let streamed = ivn_bench::pipeline::run_with(true, &StreamOptions::default());
    let batch = ivn_bench::pipeline::run_batch(true, None, false);
    assert_eq!(streamed, batch);
}

/// The lane-batched rotator path (ISSUE 7) against the pre-change scalar
/// emission math, preserved verbatim as [`emit_oracle`]: accumulating
/// trig oscillator, polar PA (`atan2` + `sin_cos`), carrier phasor. The
/// rotator is a different factorization of the same signal, so the two
/// agree to rounding — bounded here at 1e-9 per sample — for every block
/// size and worker count. (The rendered figure goldens under
/// `tests/golden/figures/` stayed byte-identical across the switch, the
/// one-time check that this tolerance is invisible downstream.)
#[test]
fn lane_batched_synthesis_tracks_trig_oracle() {
    let mut rng = StdRng::seed_from_u64(41);
    let offsets = [0.0, 13.0, 37.0, 102.0];
    let bank = TxBank::new(
        &mut rng,
        offsets.len(),
        915e6,
        100e3,
        &offsets,
        &ClockDistribution::free_running(),
    );
    let drive = 0.05;
    // A profile with runs of 1.0 and hard 0.0 notches, like the real
    // power-then-gap excitation the PA memoization is tuned for.
    let profile: Vec<f64> = (0..6000)
        .map(|k| if (k / 700) % 3 == 2 { 0.0 } else { 1.0 })
        .collect();
    let oracle: Vec<Vec<Complex64>> = (0..bank.len())
        .map(|i| emit_oracle(&bank, i, &profile, drive))
        .collect();
    for block in BLOCK_SIZES {
        for threads in THREAD_COUNTS {
            let mut st = BankStreamer::new(&bank, drive, threads);
            let mut collected: Vec<Vec<Complex64>> = vec![Vec::new(); bank.len()];
            for chunk in profile.chunks(block) {
                st.push(chunk);
                for (i, c) in collected.iter_mut().enumerate() {
                    c.extend_from_slice(st.block(i));
                }
            }
            st.flush();
            for (i, c) in collected.iter_mut().enumerate() {
                c.extend_from_slice(st.block(i));
            }
            for (i, (got, want)) in collected.iter().zip(&oracle).enumerate() {
                assert_eq!(got.len(), want.len(), "device {i}");
                let worst = got
                    .iter()
                    .zip(want)
                    .map(|(a, b)| (*a - *b).norm())
                    .fold(0.0f64, f64::max);
                assert!(
                    worst < 1e-9,
                    "device {i} block {block} threads {threads}: \
                     max |lane - oracle| = {worst:e}"
                );
            }
        }
    }
}

#[test]
fn sample_rate_override_scales_the_run() {
    let opts = StreamOptions {
        sample_rate: Some(32_000.0),
        ..Default::default()
    };
    let report = outputs_streaming(true, &opts);
    assert_eq!(report.outputs.sample_rate, 32_000.0);
    let batch = outputs_batch(true, Some(32_000.0));
    assert_eq!(report.outputs, batch, "override diverged from oracle");
}
