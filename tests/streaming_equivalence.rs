//! Streaming-vs-batch equivalence for the end-to-end sample path.
//!
//! The block pipeline (ISSUE 5) must be *bit-identical* to the
//! whole-buffer oracle for every block size, not merely close: the same
//! FNV digest over the superposed rx stream, the same calibration
//! amplitudes to the last ulp, the same power-up sample index, the same
//! decoded bits. These tests pin that contract, plus thread-count
//! determinism of the parallel lane driver and the constant-memory
//! guarantee (per-stage peak footprint bounded by the block size).

use ivn_bench::pipeline::{outputs_batch, outputs_streaming, StreamOptions};

const BLOCK_SIZES: [usize; 4] = [1, 7, 256, 4096];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn streaming_matches_batch_for_every_block_size() {
    let batch = outputs_batch(true, None);
    for block in BLOCK_SIZES {
        let opts = StreamOptions {
            block,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert_eq!(
            report.outputs, batch,
            "block={block}: streaming diverged from whole-buffer oracle"
        );
    }
}

#[test]
fn streaming_is_deterministic_across_thread_counts() {
    let reference = outputs_streaming(true, &StreamOptions::default());
    for threads in THREAD_COUNTS {
        let opts = StreamOptions {
            threads,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert_eq!(
            report.outputs, reference.outputs,
            "{threads} threads changed the streamed output"
        );
    }
}

#[test]
fn per_stage_footprint_is_bounded_by_block_size() {
    for block in BLOCK_SIZES {
        let opts = StreamOptions {
            block,
            ..Default::default()
        };
        let report = outputs_streaming(true, &opts);
        assert!(!report.footprint.is_empty(), "footprint not recorded");
        for &(stage, peak) in &report.footprint {
            assert!(
                peak <= 2 * block,
                "block={block}: stage '{stage}' peak footprint {peak} exceeds 2x block"
            );
        }
    }
}

#[test]
fn rendered_report_matches_batch_renderer() {
    // The human-readable pipeline report must not change shape between the
    // streaming driver and the batch oracle (modulo the diagnostic lines,
    // which are off by default).
    let streamed = ivn_bench::pipeline::run_with(true, &StreamOptions::default());
    let batch = ivn_bench::pipeline::run_batch(true, None, false);
    assert_eq!(streamed, batch);
}

#[test]
fn sample_rate_override_scales_the_run() {
    let opts = StreamOptions {
        sample_rate: Some(32_000.0),
        ..Default::default()
    };
    let report = outputs_streaming(true, &opts);
    assert_eq!(report.outputs.sample_rate, 32_000.0);
    let batch = outputs_batch(true, Some(32_000.0));
    assert_eq!(report.outputs, batch, "override diverged from oracle");
}
