//! Scenario setup shared by the cross-crate integration tests.
//!
//! Each test binary compiles this module independently and uses a
//! subset, so unused helpers are expected.
#![allow(dead_code)]

use ivn::rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn::rfid::pie::{encode_frame, rasterize, PieParams};

/// The canonical Query (DR=8, FM0, no TRext, session S0, Q=0) every
/// downlink scenario keys on.
pub fn query() -> Command {
    Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    }
}

/// Encodes the canonical Query into a rasterized PIE envelope at
/// `sample_rate` with notches at `low_level`; returns the command bits
/// alongside the envelope.
pub fn rasterized_query(sample_rate: f64, low_level: f64) -> (Vec<bool>, Vec<f64>) {
    let bits = query().encode();
    let runs = encode_frame(&bits, &PieParams::paper_defaults(), true);
    let env = rasterize(&runs, sample_rate, low_level);
    (bits, env)
}

/// Parses figure output into numeric rows: every line starting with a
/// digit becomes the vector of its parseable whitespace-separated cells.
pub fn numeric_rows(s: &str) -> Vec<Vec<f64>> {
    s.lines()
        .filter(|l| l.trim_start().starts_with(char::is_numeric))
        .map(|l| {
            l.split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect()
        })
        .collect()
}
