//! Golden-vector corpus for the Gen2 protocol stack.
//!
//! Every vector below is hand-computed from the EPC Gen2 timing and CRC
//! definitions (paper §5 parameters: Tari 25 µs, data-1 = 2 Tari,
//! PW = delimiter = 12.5 µs, TRcal = 133.3 µs), pinning the `ivn-rfid`
//! codecs byte-for-byte. The existing suites only round-trip the codecs;
//! these tests anchor the absolute on-air representation, so an
//! encode/decode bug that cancels in a round trip still fails here.

use ivn::rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn::rfid::crc::{append_crc5, bits_to_u64, check_crc16, check_crc5, crc16, crc5, u16_to_bits};
use ivn::rfid::fm0::Fm0;
use ivn::rfid::miller::Miller;
use ivn::rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

fn bits(pattern: &[u8]) -> Vec<bool> {
    pattern.iter().map(|&b| b == 1).collect()
}

// ---------------------------------------------------------------------
// PIE encode timings.
// ---------------------------------------------------------------------

/// Paper defaults, frame-sync preamble (no TRcal), payload `[1, 0]`.
/// Hand-derived level runs: leading carrier 50 µs; delimiter low 12.5 µs;
/// data-0 symbol 25 µs (12.5 high + 12.5 low); RTcal 75 µs (62.5 + 12.5);
/// data-1 bit 50 µs (37.5 + 12.5); data-0 bit 25 µs; trailing carrier
/// 50 µs.
#[test]
fn pie_frame_sync_level_runs_hand_computed() {
    let p = PieParams::paper_defaults();
    let runs = encode_frame(&bits(&[1, 0]), &p, false);
    let expected: [(bool, f64); 11] = [
        (true, 50.0e-6),  // leading carrier = one data-1 length
        (false, 12.5e-6), // delimiter
        (true, 12.5e-6),  // data-0: Tari − PW high ...
        (false, 12.5e-6), // ... then PW low
        (true, 62.5e-6),  // RTcal: 75 µs − PW
        (false, 12.5e-6),
        (true, 37.5e-6), // bit 1: 50 µs − PW
        (false, 12.5e-6),
        (true, 12.5e-6), // bit 0: 25 µs − PW
        (false, 12.5e-6),
        (true, 50.0e-6), // trailing carrier
    ];
    assert_eq!(runs.len(), expected.len());
    for (i, ((lvl, dur), (elvl, edur))) in runs.iter().zip(&expected).enumerate() {
        assert_eq!(lvl, elvl, "level at run {i}");
        assert!(approx(*dur, *edur), "run {i}: {dur} vs {edur}");
    }
}

/// A Query preamble inserts TRcal (133.3 µs → 120.8 µs high + PW) right
/// after RTcal.
#[test]
fn pie_query_preamble_includes_trcal() {
    let p = PieParams::paper_defaults();
    let runs = encode_frame(&[], &p, true);
    // leading, delimiter, data-0 (2 runs), RTcal (2), TRcal (2), trailing.
    assert_eq!(runs.len(), 9);
    let (trcal_level, trcal_high) = runs[6];
    assert!(trcal_level);
    assert!(
        approx(trcal_high, 133.3e-6 - 12.5e-6),
        "TRcal high {trcal_high}"
    );
    assert!(!runs[7].0 && approx(runs[7].1, 12.5e-6));
}

/// Frame duration of the canonical 22-bit Query (11 zeros, 11 ones):
/// 12.5 + 25 + 75 + 133.3 + 11·25 + 11·50 = 1070.8 µs.
#[test]
fn pie_query_frame_duration_hand_computed() {
    let p = PieParams::paper_defaults();
    assert!(approx(p.frame_duration_s(11, 11, true), 1070.8e-6));
    // And the calibration intervals themselves.
    assert!(approx(p.data0_s(), 25e-6));
    assert!(approx(p.data1_s(), 50e-6));
    assert!(approx(p.rtcal_s(), 75e-6));
    assert!(approx(p.pivot_s(), 37.5e-6));
}

/// Rasterization at 400 kS/s: the empty frame-sync frame spans exactly
/// 212.5 µs = 85 samples, 15 of them low (three 12.5 µs notches).
#[test]
fn pie_rasterized_sample_counts() {
    let p = PieParams::paper_defaults();
    let runs = encode_frame(&[], &p, false);
    let env = rasterize(&runs, 400e3, 0.0);
    assert_eq!(env.len(), 85);
    assert_eq!(env.iter().filter(|&&v| v == 0.0).count(), 15);
    // The pinned envelope decodes to the empty payload.
    assert_eq!(decode_frame(&env, 400e3).unwrap(), Vec::<bool>::new());
}

// ---------------------------------------------------------------------
// FM0 uplink coding.
// ---------------------------------------------------------------------

/// Single-bit vectors from the FM0 definition (level starts +1 and
/// inverts entering every symbol; data-0 also inverts mid-symbol).
#[test]
fn fm0_single_bit_half_levels() {
    let fm0 = Fm0::new(1);
    assert_eq!(fm0.encode_halves(&bits(&[1])), vec![-1.0, -1.0]);
    assert_eq!(fm0.encode_halves(&bits(&[0])), vec![-1.0, 1.0]);
    assert_eq!(
        fm0.encode_halves(&bits(&[1, 1])),
        vec![-1.0, -1.0, 1.0, 1.0]
    );
    assert_eq!(
        fm0.encode_halves(&bits(&[0, 0])),
        vec![-1.0, 1.0, -1.0, 1.0]
    );
}

/// The paper's 12-bit preamble `110100100011` as FM0 half-levels,
/// hand-walked symbol by symbol.
#[test]
fn fm0_paper_preamble_half_levels() {
    let fm0 = Fm0::new(1);
    let halves = fm0.encode_halves(&bits(&[1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 1]));
    let expected = [
        -1.0, -1.0, // 1
        1.0, 1.0, // 1
        -1.0, 1.0, // 0
        -1.0, -1.0, // 1
        1.0, -1.0, // 0
        1.0, -1.0, // 0
        1.0, 1.0, // 1
        -1.0, 1.0, // 0
        -1.0, 1.0, // 0
        -1.0, 1.0, // 0
        -1.0, -1.0, // 1
        1.0, 1.0, // 1
    ];
    assert_eq!(halves, expected);
}

// ---------------------------------------------------------------------
// Miller subcarrier coding.
// ---------------------------------------------------------------------

/// M = 2, one sample per quarter cycle: 8 samples per symbol, hand-walked
/// from "baseband (invert mid-symbol on data-1, invert at the boundary
/// between consecutive data-0s) × square subcarrier".
#[test]
fn miller_m2_hand_computed_sequences() {
    let codec = Miller::new(2, 1);
    assert_eq!(codec.samples_per_symbol(), 8);
    assert_eq!(
        codec.encode(&bits(&[1])),
        vec![1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0]
    );
    assert_eq!(
        codec.encode(&bits(&[0])),
        vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0]
    );
    // Consecutive zeros flip the baseband at the symbol boundary.
    assert_eq!(
        codec.encode(&bits(&[0, 0])),
        vec![
            1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, // first 0
            -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, // second 0, inverted
        ]
    );
}

// ---------------------------------------------------------------------
// CRC-5 / CRC-16 known-answer vectors.
// ---------------------------------------------------------------------

/// Register-level CRC-5 vectors (poly 0x09, preset 0b01001) walked by
/// hand: the empty message leaves the preset; one zero bit shifts it;
/// one set bit shifts and XORs the polynomial.
#[test]
fn crc5_known_answers() {
    assert_eq!(crc5(&[]), 0b01001);
    assert_eq!(crc5(&bits(&[0])), 0b10010);
    assert_eq!(crc5(&bits(&[1])), 0b11011);
    // The Query opcode `1000` walked through all four steps.
    assert_eq!(crc5(&bits(&[1, 0, 0, 0])), 0b00111);
}

/// Appending the CRC-5 must append exactly the register bits MSB-first,
/// and the framed message must verify.
#[test]
fn crc5_append_is_msb_first() {
    let mut framed = bits(&[1, 0, 0, 0]);
    append_crc5(&mut framed);
    assert_eq!(framed.len(), 9);
    assert_eq!(bits_to_u64(&framed[4..]), 0b00111);
    assert!(check_crc5(&framed));
}

/// CRC-16 vectors: preset 0xFFFF, poly 0x1021, complemented output.
#[test]
fn crc16_known_answers() {
    // Empty message: !0xFFFF.
    assert_eq!(crc16(&[]), 0x0000);
    // One zero bit: 0xFFFF shifts to 0xFFFE, XORs 0x1021 → 0xEFDF → !.
    assert_eq!(crc16(&bits(&[0])), 0x1020);
    // One set bit: MSB matches, shift only → 0xFFFE → !.
    assert_eq!(crc16(&bits(&[1])), 0x0001);
    // The CRC-16/CCITT-FALSE check string "123456789" → 0x29B1, inverted.
    let msg: Vec<bool> = b"123456789"
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect();
    assert_eq!(crc16(&msg), !0x29B1);
}

/// A full 16-bit word framed with its CRC-16 must verify, and the
/// residue is position-sensitive (swapping two unequal bits breaks it).
#[test]
fn crc16_word_framing() {
    let mut framed = u16_to_bits(0xABCD);
    let c = crc16(&framed);
    framed.extend(u16_to_bits(c));
    assert!(check_crc16(&framed));
    let mut swapped = framed.clone();
    swapped.swap(0, 1); // 0xA… starts `10` — swap changes the message
    assert!(!check_crc16(&swapped));
}

// ---------------------------------------------------------------------
// Full-command vector: the canonical Query bit pattern.
// ---------------------------------------------------------------------

/// Query(DR=8, M=FM0, TRext=0, S0, Q=0): opcode `1000`, DR=0, M=00,
/// TRext=0, Sel=00 (all), session=00, target=0, Q=0000, then CRC-5 over
/// the 17 payload bits. Pins the over-the-air bit order end-to-end.
#[test]
fn query_command_bit_vector() {
    let encoded = Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q: 0,
    }
    .encode();
    assert_eq!(encoded.len(), 22, "Query is 22 bits");
    assert_eq!(&encoded[..4], &bits(&[1, 0, 0, 0])[..], "opcode");
    // Every field in this canonical Query is zero.
    assert!(
        encoded[4..17].iter().all(|&b| !b),
        "payload fields should be all-zero"
    );
    // Trailing 5 bits are the CRC-5 of the first 17.
    assert_eq!(bits_to_u64(&encoded[17..]), crc5(&encoded[..17]) as u64);
    assert!(check_crc5(&encoded));
    // Round-trips through the command decoder.
    let decoded = Command::decode(&encoded).expect("decode");
    assert!(matches!(
        decoded,
        Command::Query {
            dr: DivideRatio::Dr8,
            m: TagEncoding::Fm0,
            trext: false,
            session: Session::S0,
            q: 0,
        }
    ));
}
