//! Cross-crate integration tests: the full IVN stack exercised through
//! the facade crate, asserting the paper's headline behaviours.

use ivn::core::body::{Placement, TagSpec};
use ivn::core::system::{IvnSystem, SystemConfig};
use ivn::em::medium::Medium;
use ivn_runtime::rng::StdRng;

#[test]
fn water_depth_grows_with_antennas() {
    let mut depths = Vec::new();
    for n in [2usize, 4, 8] {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(n, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(100 + n as u64);
        depths.push(sys.max_depth_water(&mut rng, 0.5, 1));
    }
    assert!(
        depths[0] < depths[1] && depths[1] < depths[2],
        "depths not monotone: {depths:?}"
    );
    // 8 antennas reach ~20 cm (paper: 23 cm).
    assert!(depths[2] > 0.15 && depths[2] < 0.30, "{depths:?}");
}

#[test]
fn miniature_tag_reaches_11cm_class_depths() {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::miniature()));
    let mut rng = StdRng::seed_from_u64(11);
    let depth = sys.max_depth_water(&mut rng, 0.3, 1);
    // Paper: 11 cm for the millimetre tag at 8 antennas.
    assert!(depth > 0.06 && depth < 0.16, "mini depth {depth}");
}

#[test]
fn miniature_tag_cannot_power_without_cib() {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(1, TagSpec::miniature()));
    let mut rng = StdRng::seed_from_u64(12);
    // Even at the tank face the mini tag is dead with one antenna (§6.1.2).
    let out = sys.run_session(&mut rng, &Placement::water_tank(0.001));
    assert!(!out.powered);
}

#[test]
fn air_range_ratio_matches_paper_factor() {
    let mut rng = StdRng::seed_from_u64(13);
    let sys1 = IvnSystem::new(SystemConfig::paper_prototype(1, TagSpec::standard()));
    let sys8 = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
    let r1 = sys1.max_range_air(&mut rng, 0.5, 80.0, 1);
    let r8 = sys8.max_range_air(&mut rng, 0.5, 80.0, 1);
    // Paper: 5.2 m → 38 m, a 7.6× factor. Accept 5×–9×.
    let factor = r8 / r1;
    assert!((4.0..6.5).contains(&r1), "single-antenna range {r1}");
    assert!((5.0..9.0).contains(&factor), "factor {factor} (r8 {r8})");
}

#[test]
fn deep_tissue_session_through_layered_body() {
    // A full session through the swine subcutaneous stack must succeed
    // with 8 antennas for both tags.
    for tag in [TagSpec::standard(), TagSpec::miniature()] {
        let name = tag.power.name.clone();
        let sys = IvnSystem::new(SystemConfig::paper_prototype(8, tag));
        let mut rng = StdRng::seed_from_u64(14);
        let mut ok = 0;
        for _ in 0..6 {
            if sys
                .run_session(&mut rng, &Placement::swine_subcutaneous())
                .success()
            {
                ok += 1;
            }
        }
        assert!(ok >= 5, "{name}: only {ok}/6 subcutaneous sessions");
    }
}

#[test]
fn gastric_standard_tag_succeeds_about_half_the_time() {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
    let mut rng = StdRng::seed_from_u64(15);
    let trials = 30;
    let ok = (0..trials)
        .filter(|_| {
            sys.run_session(&mut rng, &Placement::swine_gastric())
                .success()
        })
        .count();
    // Paper: half of six trials. Accept 20–80 % over a larger sample.
    let rate = ok as f64 / trials as f64;
    assert!((0.2..0.8).contains(&rate), "gastric success rate {rate}");
}

#[test]
fn gastric_miniature_tag_never_powers() {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::miniature()));
    let mut rng = StdRng::seed_from_u64(16);
    for _ in 0..10 {
        let out = sys.run_session(&mut rng, &Placement::swine_gastric());
        assert!(!out.success(), "mini tag should not work in the stomach");
    }
}

#[test]
fn media_box_sessions_work_in_all_figure11_media() {
    // At a modest 2 cm depth with 8 antennas, CIB establishes a session
    // in every evaluation medium.
    for medium in Medium::figure11_media() {
        if medium.name == "air" {
            continue; // media_box with air is just free space
        }
        let name = medium.name.clone();
        let sys = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(17);
        let placement = Placement::media_box(medium, 0.02);
        let mut ok = 0;
        for _ in 0..3 {
            if sys.run_session(&mut rng, &placement).success() {
                ok += 1;
            }
        }
        assert!(ok >= 2, "{name}: {ok}/3 sessions");
    }
}

#[test]
fn outcome_stages_are_ordered() {
    // A failed power-up implies no command decode and no RN16.
    let sys = IvnSystem::new(SystemConfig::paper_prototype(2, TagSpec::standard()));
    let mut rng = StdRng::seed_from_u64(18);
    for r in [1.0, 10.0, 50.0, 200.0] {
        let out = sys.run_session(&mut rng, &Placement::free_space(r));
        if !out.powered {
            assert!(!out.command_decoded && !out.rn16_decoded);
        }
        if !out.command_decoded {
            assert!(!out.rn16_decoded);
        }
    }
}

#[test]
fn sessions_deterministic_for_seed() {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(5, TagSpec::standard()));
    let a = sys.run_session(&mut StdRng::seed_from_u64(19), &Placement::water_tank(0.08));
    let b = sys.run_session(&mut StdRng::seed_from_u64(19), &Placement::water_tank(0.08));
    assert_eq!(a, b);
}
