//! Fault-injection integration tests: drive the full stack through the
//! adverse conditions the design must tolerate (or fail predictably
//! under) — noise sweeps, brownouts, timing slop, corrupted frames.

use ivn::core::oob::{OobReader, OobReaderConfig};
use ivn::dsp::complex::Complex64;
use ivn::dsp::noise::{AwgnSource, PhaseNoise};
use ivn::rfid::commands::Command;
use ivn::rfid::pie::decode_frame;
use ivn::rfid::tag::{Tag, TagReply, TagState};
use ivn::sdr::clock::ClockDistribution;
use ivn_runtime::rng::StdRng;

mod common;
use common::{query, rasterized_query};

#[test]
fn uplink_degrades_gracefully_with_noise() {
    // Correlation must fall monotonically (within MC slop) as noise rises,
    // crossing the 0.8 threshold rather than cliff-diving to zero.
    let reader = OobReader::new(OobReaderConfig::paper_defaults());
    let msg: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
    let mut last_corr = 1.1;
    let mut crossings = 0;
    for noise_dbm in [-100.0, -80.0, -60.0, -45.0] {
        let mut cfg = OobReaderConfig::paper_defaults();
        cfg.noise_watts = ivn::dsp::units::dbm_to_watts(noise_dbm);
        let reader_n = OobReader::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let r = reader_n.receive_and_decode(&mut rng, 1e-5, &msg, 4, &[], 2000);
        if r.correlation < 0.8 && last_corr >= 0.8 {
            crossings += 1;
        }
        assert!(
            r.correlation <= last_corr + 0.1,
            "correlation rose with noise: {} then {}",
            last_corr,
            r.correlation
        );
        last_corr = r.correlation;
    }
    assert_eq!(crossings, 1, "expected one clean threshold crossing");
    let _ = reader;
}

#[test]
fn pie_decoding_survives_moderate_amplitude_noise() {
    let (bits, clean_env) = rasterized_query(400e3, 0.0);
    let mut rng = StdRng::seed_from_u64(2);
    // 5 % amplitude noise: fine. 45 %: must fail (not silently succeed).
    let mut decode_with_noise = |sigma: f64| -> bool {
        let mut env = clean_env.clone();
        let mut noise = AwgnSource::new(sigma * sigma);
        for v in env.iter_mut() {
            *v = (*v + noise.sample(&mut rng).re).max(0.0);
        }
        decode_frame(&env, 400e3)
            .map(|d| d == bits)
            .unwrap_or(false)
    };
    assert!(decode_with_noise(0.05));
    let mut failures = 0;
    for _ in 0..5 {
        if !decode_with_noise(0.45) {
            failures += 1;
        }
    }
    assert!(failures >= 3, "only {failures}/5 failed at 45 % noise");
}

#[test]
fn corrupted_command_is_rejected_not_misread() {
    // Flip bits in an encoded Query: the command layer must reject via
    // CRC rather than decode into a different command.
    let bits = query().encode();
    for i in 0..bits.len() {
        let mut corrupted = bits.clone();
        corrupted[i] = !corrupted[i];
        match Command::decode(&corrupted) {
            Err(_) => {}
            Ok(cmd) => {
                // Flipping an opcode bit may yield another command type;
                // it must never silently yield a *Query* with wrong fields.
                assert!(
                    !matches!(cmd, Command::Query { .. }),
                    "bit {i} produced a forged Query"
                );
            }
        }
    }
}

#[test]
fn brownout_storm_never_corrupts_tag_state() {
    // Rapid power cycling interleaved with commands: the tag must always
    // be in a consistent state and never reply while dark.
    let mut tag = Tag::with_epc96(0xD00D, 3);
    let mut rng = StdRng::seed_from_u64(4);
    use ivn_runtime::rng::Rng;
    for step in 0..2000 {
        let powered = rng.random::<f64>() < 0.5;
        tag.set_powered(powered);
        let reply = tag.process(&query());
        if !powered {
            assert_eq!(reply, TagReply::Silent, "dark reply at step {step}");
            assert_eq!(tag.state(), TagState::Ready);
        }
    }
}

#[test]
fn phase_noise_does_not_break_cib_gain() {
    // A slow phase random walk on each carrier (shared-reference PLLs)
    // leaves the CIB peak intact: the envelope's peak only cares about
    // relative phase *rates*, and the walk is slow next to the offsets.
    let mut rng = StdRng::seed_from_u64(5);
    use ivn::core::cib::CibConfig;
    use ivn_runtime::rng::Rng;
    let cfg = CibConfig::paper_prototype_n(8);
    let clean: Vec<Complex64> = (0..8)
        .map(|_| Complex64::from_polar(1.0, rng.random::<f64>() * std::f64::consts::TAU))
        .collect();
    let clean_peak = cfg.received_peak_power(&clean);
    // Apply an accumulated phase-noise rotation to each channel.
    let mut pn = PhaseNoise::new(0.002);
    let noisy: Vec<Complex64> = clean
        .iter()
        .map(|c| {
            for _ in 0..100 {
                pn.sample(&mut rng);
            }
            *c * Complex64::cis(pn.phase())
        })
        .collect();
    let noisy_peak = cfg.received_peak_power(&noisy);
    // Phases are blind anyway: the peak distribution is unchanged; check
    // the realized value stays in the same ballpark.
    assert!(
        noisy_peak > clean_peak * 0.5 && noisy_peak < clean_peak * 2.0,
        "clean {clean_peak} noisy {noisy_peak}"
    );
}

#[test]
fn trigger_slop_breaks_command_synchrony_predictably() {
    // With Octoclock-grade sync every device keys the same notch; with
    // millisecond slop the superposed envelope no longer carries clean
    // PIE notches and the tag cannot decode.
    let rate = 400e3;
    let (bits, profile) = rasterized_query(rate, 0.0);
    let mut rng = StdRng::seed_from_u64(6);

    let decode_with_clock = |clock: &ClockDistribution, rng: &mut StdRng| -> bool {
        use ivn_runtime::rng::Rng;
        let offsets = clock.draw_trigger_offsets(rng, 4);
        // Superpose 4 antennas' keyed envelopes with per-antenna delay.
        let mut env = vec![0.0f64; profile.len()];
        for &off in &offsets {
            let shift = (off * rate).round() as i64;
            let phase = rng.random::<f64>() * std::f64::consts::TAU;
            let _ = phase; // amplitude-only superposition (worst case)
            for (k, e) in env.iter_mut().enumerate() {
                let idx = k as i64 - shift;
                let amp = if idx >= 0 && (idx as usize) < profile.len() {
                    profile[idx as usize]
                } else {
                    1.0
                };
                *e += amp;
            }
        }
        decode_frame(&env, rate).map(|d| d == bits).unwrap_or(false)
    };

    assert!(decode_with_clock(&ClockDistribution::octoclock(), &mut rng));
    let sloppy = ClockDistribution {
        pps_jitter_rms_s: 30e-6, // comparable to the notch width
        residual_ppm_rms: 0.0,
    };
    let mut failures = 0;
    for _ in 0..5 {
        if !decode_with_clock(&sloppy, &mut rng) {
            failures += 1;
        }
    }
    assert!(
        failures >= 3,
        "sloppy clock decoded too often ({failures}/5 failed)"
    );
}

#[test]
fn saturated_frontend_flagged() {
    use ivn::sdr::frontend::RxChain;
    let chain = RxChain::without_saw();
    let mut rng = StdRng::seed_from_u64(7);
    let len = 256;
    // A blocker with occasional 10× peaks: AGC targets the RMS, so the
    // peaks clip and the chain must report saturation.
    let jam: Vec<Complex64> = (0..len)
        .map(|k| {
            let amp = if k % 50 == 0 { 1.0 } else { 0.1 };
            Complex64::from_polar(amp, k as f64 * 0.7)
        })
        .collect();
    let (_, _, saturation) = chain.capture(&mut rng, &[(915e6, jam)], len);
    assert!(saturation > 0.0, "clipping not reported");
}
