//! Golden pin for the scenario refactor: every `reproduce` figure
//! target, rendered through the scenario registry, must be
//! byte-identical to the output captured before the experiment layer
//! moved onto the `Scenario` substrate (tests/golden/figures/).
//!
//! Regenerate a file after an *intentional* output change with:
//! `cargo run --release --bin reproduce -- <target> --quick > tests/golden/figures/<target>.quick.txt`

use std::path::PathBuf;

fn golden(target: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/figures")
        .join(format!("{target}.quick.txt"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn check(target: &str) {
    let s = ivn_bench::registry::builtin(target)
        .unwrap_or_else(|| panic!("no builtin scenario for {target}"));
    let now = ivn_bench::registry::render(&s, true).expect(target);
    let want = golden(target);
    assert_eq!(
        now, want,
        "`reproduce {target} --quick` diverged from the pre-refactor golden bytes"
    );
}

// One test per target so a divergence names the figure directly and the
// suite parallelizes across the harness' test threads.

#[test]
fn golden_fig2() {
    check("fig2");
}

#[test]
fn golden_fig3() {
    check("fig3");
}

#[test]
fn golden_fig4() {
    check("fig4");
}

#[test]
fn golden_fig6() {
    check("fig6");
}

#[test]
fn golden_fig9() {
    check("fig9");
}

#[test]
fn golden_fig10() {
    check("fig10");
}

#[test]
fn golden_fig11() {
    check("fig11");
}

#[test]
fn golden_fig12() {
    check("fig12");
}

#[test]
fn golden_fig13() {
    check("fig13");
}

#[test]
fn golden_invivo() {
    check("invivo");
}

#[test]
fn golden_freqs() {
    check("freqs");
}

#[test]
fn golden_ablations() {
    check("ablations");
}

#[test]
fn golden_pipeline() {
    check("pipeline");
}

#[test]
fn golden_export_round_trip() {
    // Scenario JSON is byte-stable under export → parse → export: the
    // contract behind `reproduce export` and campaign re-runs.
    for name in ivn_bench::registry::builtin_names() {
        let s = ivn_bench::registry::builtin(name).unwrap();
        let once = s.dump();
        let twice = ivn_core::scenario::Scenario::parse(&once)
            .unwrap_or_else(|e| panic!("{name}: {}", e.reason))
            .dump();
        assert_eq!(once, twice, "{name} export not byte-stable");
    }
}
