//! Mass-campaign determinism at scale: a generated fleet of 1000
//! scenarios written to disk, loaded back, and run through the campaign
//! driver — the full report must be byte-identical at 1, 2 and 8 worker
//! threads, and stable across repeat runs.

use ivn_bench::campaign;
use ivn_core::scenario::{builtin, gen, QuickFull, Scenario};
use ivn_runtime::json::Json;
use std::path::PathBuf;

/// A 1000-scenario fleet cheap enough for CI: one trial per scenario,
/// swept over tank depth and tag kind with jittered EIRP.
fn fleet_spec() -> gen::GenSpec {
    let mut base = builtin("session").expect("builtin");
    base.trials = QuickFull::same(1);
    gen::GenSpec {
        base,
        count: 1000,
        seed: 2026,
        sweeps: vec![
            gen::SweepAxis {
                path: "placement.depth_m".into(),
                values: [0.02, 0.04, 0.06, 0.08, 0.10]
                    .iter()
                    .map(|&d| Json::Num(d))
                    .collect(),
            },
            gen::SweepAxis {
                path: "tag".into(),
                values: vec![Json::Str("standard".into()), Json::Str("miniature".into())],
            },
        ],
        jitters: vec![gen::JitterSpec {
            path: "eirp_dbm".into(),
            frac: 0.03,
        }],
    }
}

#[test]
fn thousand_scenario_campaign_is_thread_invariant() {
    let fleet = gen::generate(&fleet_spec()).expect("generate");
    assert_eq!(fleet.len(), 1000);

    // Round-trip through disk exactly like `reproduce generate` +
    // `reproduce campaign <dir>` would.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("scenario-campaign-1000");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for s in &fleet {
        std::fs::write(dir.join(format!("{}.json", s.name)), s.dump() + "\n").unwrap();
    }
    let loaded = campaign::load_dir(&dir).expect("load_dir");
    assert_eq!(loaded.len(), fleet.len());

    let reports: Vec<String> = [1, 2, 8]
        .iter()
        .map(|&t| campaign::run(&loaded, true, t).report().dump())
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 threads diverged");
    assert_eq!(reports[1], reports[2], "2 vs 8 threads diverged");

    // Repeat run from the same inputs: bit-identical again.
    let again = campaign::run(&loaded, true, 8).report().dump();
    assert_eq!(reports[2], again, "re-run diverged");

    // Sanity on content: everything evaluated, nothing errored, and the
    // aggregate carries real distributions.
    let outcome = campaign::run(&loaded, true, 8);
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.metrics.len(), 1000);
    let agg = outcome.aggregate();
    assert_eq!(agg.get("evaluated"), Some(&Json::Num(1000.0)));
    assert!(matches!(agg.get("gain_db_median"), Some(Json::Obj(_))));
    assert!(matches!(agg.get("powered_frac"), Some(Json::Obj(_))));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_fleet_is_seed_stable_and_valid() {
    let a = gen::generate(&fleet_spec()).unwrap();
    let b = gen::generate(&fleet_spec()).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.dump(), y.dump());
    }
    // Every generated file is a valid scenario on its own.
    for s in a.iter().take(50) {
        let round = Scenario::parse(&s.dump()).unwrap();
        assert_eq!(round.dump(), s.dump());
    }
    // The grid actually varies the swept fields.
    let depths: std::collections::BTreeSet<String> = a
        .iter()
        .take(10)
        .map(|s| format!("{:?}", s.placement))
        .collect();
    assert!(
        depths.len() >= 5,
        "sweep did not vary placement: {depths:?}"
    );
}
