//! Cross-crate property-based tests: invariants that span the physics,
//! circuit and beamforming layers.

use ivn::core::cib::CibConfig;
use ivn::core::waveform::CibEnvelope;
use ivn::dsp::complex::Complex64;
use ivn::em::layered::{single_medium_path, LayeredPath};
use ivn::em::medium::Medium;
use ivn::harvester::powerup::TagPowerProfile;
use ivn::harvester::rectifier::Rectifier;
use ivn::harvester::DiodeModel;
use ivn_runtime::prop::{vec as pvec, Strategy};
use ivn_runtime::{prop_assert, prop_assert_eq, props};

fn medium_strategy() -> impl Strategy<Value = Medium> {
    (1.0f64..80.0, 0.0f64..3.0).prop_map(|(eps, sigma)| Medium::new("prop", eps, sigma))
}

props! {
    cases = 64;

    fn channel_amplitude_never_grows(medium in medium_strategy(),
                                     air in 0.1f64..5.0,
                                     depth in 0.0f64..0.2) {
        // Passivity: |H| through any layered path is at most the
        // free-space response at the same air distance.
        let with_tissue = single_medium_path(air, medium, depth).response(915e6).norm();
        let free = LayeredPath::free_space(air).response(915e6).norm();
        prop_assert!(with_tissue <= free + 1e-12);
    }

    fn deeper_is_never_stronger(medium in medium_strategy(),
                                d1 in 0.0f64..0.1, extra in 0.0f64..0.1) {
        let shallow = single_medium_path(0.5, medium.clone(), d1).response(915e6).norm();
        let deep = single_medium_path(0.5, medium, d1 + extra).response(915e6).norm();
        prop_assert!(deep <= shallow + 1e-12);
    }

    fn alpha_beta_nonnegative_and_ordered(medium in medium_strategy(),
                                          f in 100e6f64..3e9) {
        prop_assert!(medium.alpha(f) >= 0.0);
        prop_assert!(medium.beta(f) > 0.0);
        // A passive medium attenuates less per radian than it rotates:
        // α < β always (loss tangent finite).
        prop_assert!(medium.alpha(f) < medium.beta(f));
    }

    fn cib_peak_bounded_by_mrt_and_above_static(
        amps in pvec(0.01f64..1.0, 2..10),
        phases in pvec(0.0f64..std::f64::consts::TAU, 10),
    ) {
        let n = amps.len();
        let channels: Vec<Complex64> = amps
            .iter()
            .zip(&phases)
            .map(|(&a, &p)| Complex64::from_polar(a, p))
            .collect();
        let cfg = CibConfig::paper_prototype_n(n);
        let peak = cfg.received_peak_power(&channels);
        // Upper bound: coherent sum of amplitudes.
        let mrt: f64 = amps.iter().sum::<f64>();
        prop_assert!(peak <= mrt * mrt * (1.0 + 1e-9));
        // Lower bound: the static phasor sum at t = 0 (CIB can only
        // improve on the instantaneous value by scanning time).
        let static_sum = channels.iter().copied().sum::<Complex64>().norm_sqr();
        prop_assert!(peak >= static_sum - 1e-9);
    }

    fn envelope_invariant_under_common_phase(
        phases in pvec(0.0f64..std::f64::consts::TAU, 5),
        shift in 0.0f64..std::f64::consts::TAU,
        t in 0.0f64..1.0,
    ) {
        let offsets = &ivn::core::PAPER_OFFSETS_HZ[..5];
        let a = CibEnvelope::new(offsets, &phases);
        let shifted: Vec<f64> = phases.iter().map(|p| p + shift).collect();
        let b = CibEnvelope::new(offsets, &shifted);
        prop_assert!((a.envelope(t) - b.envelope(t)).abs() < 1e-9);
    }

    fn rectifier_monotone_in_drive(vs1 in 0.0f64..2.0, extra in 0.0f64..2.0,
                                   stages in 1usize..6) {
        let r = Rectifier::new(stages, DiodeModel::typical_rfid(), 1000.0);
        prop_assert!(r.steady_state_vdc(vs1 + extra) >= r.steady_state_vdc(vs1));
    }

    fn powerup_monotone_in_power(p in 1e-6f64..1e-2, factor in 1.0f64..10.0) {
        // If a tag powers at P it powers at k·P (k ≥ 1).
        let tag = TagPowerProfile::standard_tag();
        if tag.can_power_at_peak(p) {
            prop_assert!(tag.can_power_at_peak(p * factor));
        }
    }

    fn powerup_transient_consistent_with_analytic(p_dbm in -20.0f64..10.0) {
        // The transient simulation and the analytic peak check agree for
        // constant envelopes (given enough time).
        let tag = TagPowerProfile::standard_tag();
        let p = ivn::dsp::units::dbm_to_watts(p_dbm);
        let env = vec![p; 60_000];
        let out = tag.power_up(&env, 1e6);
        prop_assert_eq!(out.powered, tag.can_power_at_peak(p));
    }

    fn boundary_transmittance_in_unit_range(m1 in medium_strategy(), m2 in medium_strategy()) {
        let t = ivn::em::boundary::power_transmittance(&m1, &m2, 915e6);
        prop_assert!((0.0..=1.0).contains(&t));
    }
}
