//! Protocol-pipeline integration: every codec layer chained end to end
//! with channel impairments between them.

use ivn::dsp::complex::Complex64;
use ivn::dsp::noise::AwgnSource;
use ivn::rfid::backscatter::BackscatterModulator;
use ivn::rfid::commands::{Command, DivideRatio, Session, TagEncoding};
use ivn::rfid::fm0::Fm0;
use ivn::rfid::pie::{decode_frame, encode_frame, rasterize, PieParams};
use ivn::rfid::tag::{Tag, TagReply};
use ivn_runtime::rng::StdRng;

fn query(q: u8) -> Command {
    Command::Query {
        dr: DivideRatio::Dr8,
        m: TagEncoding::Fm0,
        trext: false,
        session: Session::S0,
        q,
    }
}

#[test]
fn reader_bits_to_tag_and_back() {
    // Reader → PIE waveform → (scaled channel) → tag decoder → state
    // machine → FM0 backscatter → (noisy channel) → bit recovery.
    let pie = PieParams::paper_defaults();
    let cmd = query(0);
    let bits = cmd.encode();
    let runs = encode_frame(&bits, &pie, cmd.needs_trcal());
    let mut env = rasterize(&runs, 400e3, 0.1);
    for v in &mut env {
        *v *= 3.3e-3; // channel attenuation
    }
    let decoded_bits = decode_frame(&env, 400e3).expect("PIE decode");
    let decoded_cmd = Command::decode(&decoded_bits).expect("command decode");
    assert_eq!(decoded_cmd, cmd);

    let mut tag = Tag::with_epc96(0xABCD_EF01_2345_6789_0000_1111, 5);
    tag.set_powered(true);
    let rn16 = match tag.process(&decoded_cmd) {
        TagReply::Rn16(rn) => rn,
        other => panic!("{other:?}"),
    };

    // Tag FM0-encodes its RN16 behind the paper preamble and backscatters.
    let fm0 = Fm0::new(4);
    let mut uplink_bits = ivn::rfid::PAPER_PREAMBLE_BITS.to_vec();
    uplink_bits.extend((0..16).rev().map(|i| (rn16 >> i) & 1 == 1));
    let baseband = fm0.encode(&uplink_bits);
    let modulator = BackscatterModulator::typical_rfid();
    let carrier = Complex64::from_polar(2e-4, 1.3);
    let mut reflected = modulator.reflect_baseband(carrier, &baseband);

    // Additive noise 20 dB below the differential signal.
    let mut rng = StdRng::seed_from_u64(6);
    let sig_amp = carrier.norm() * modulator.differential();
    let mut noise = AwgnSource::new((sig_amp * 0.1).powi(2));
    for s in &mut reflected {
        *s += noise.sample(&mut rng);
    }

    // Reader-side: project out the modulation axis and slice.
    let mean: Complex64 = reflected.iter().copied().sum::<Complex64>() / reflected.len() as f64;
    let axis = (carrier * (modulator.gamma(true) - modulator.gamma(false))).conj();
    let real_env: Vec<f64> = reflected.iter().map(|s| ((*s - mean) * axis).re).collect();
    let recovered = fm0.decode(&real_env);
    assert_eq!(recovered, uplink_bits);

    // ACK with the recovered RN16 completes the handshake.
    let rn_recovered =
        ivn::rfid::crc::bits_to_u64(&recovered[ivn::rfid::PAPER_PREAMBLE_BITS.len()..]) as u16;
    match tag.process(&Command::Ack { rn16: rn_recovered }) {
        TagReply::Epc(epc_bits) => {
            assert!(ivn::rfid::crc::check_crc16(&epc_bits));
        }
        other => panic!("expected EPC, got {other:?}"),
    }
}

#[test]
fn multi_tag_inventory_over_protocol() {
    use ivn::rfid::reader::{QAlgorithm, Reader};
    let mut tags: Vec<Tag> = (0..12)
        .map(|i| {
            let mut t = Tag::with_epc96(0xE200_0000_0000 + i as u128, 900 + i as u64);
            t.set_powered(true);
            t
        })
        .collect();
    let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 4, c: 0.3 });
    let out = reader.inventory_all(&mut tags, 80);
    assert_eq!(out.epcs.len(), 12, "inventoried {}/12", out.epcs.len());
    assert!(out.terminated);
    assert_eq!(out.rounds_to_full(), Some(out.rounds.len()));
}

#[test]
fn brownout_mid_round_recovers_next_round() {
    use ivn::rfid::reader::{QAlgorithm, Reader};
    let mut tags: Vec<Tag> = (0..3)
        .map(|i| {
            let mut t = Tag::with_epc96(0xAA00 + i as u128, 50 + i as u64);
            t.set_powered(true);
            t
        })
        .collect();
    let mut reader = Reader::new(Session::S0, QAlgorithm { q0: 3, c: 0.3 });
    // One round, then a brownout wipes everyone.
    let _ = reader.run_round(&mut tags);
    for t in tags.iter_mut() {
        t.set_powered(false);
    }
    for t in tags.iter_mut() {
        t.set_powered(true);
    }
    // Inventory still completes afterwards.
    let out = reader.inventory_all(&mut tags, 60);
    assert_eq!(out.epcs.len(), 3);
    assert!(out.terminated);
}

#[test]
fn pie_decoding_survives_cib_ripple_within_alpha() {
    // Key the PIE frame onto a CIB envelope at its peak: decoding works
    // with the paper plan (α respected).
    use ivn::core::waveform::CibEnvelope;
    let pie = PieParams::paper_defaults();
    let cmd = query(3);
    let bits = cmd.encode();
    let runs = encode_frame(&bits, &pie, true);
    let rate = 400e3;
    let profile = rasterize(&runs, rate, 0.0);
    let env = CibEnvelope::new(&ivn::core::PAPER_OFFSETS_HZ, &[0.6; 10]);
    let (t_peak, _) = env.peak_over_period(4096);
    let t0 = t_peak - profile.len() as f64 / rate / 2.0;
    let keyed: Vec<f64> = profile
        .iter()
        .enumerate()
        .map(|(k, &p)| p * env.envelope(t0 + k as f64 / rate))
        .collect();
    let decoded = decode_frame(&keyed, rate).expect("decode through ripple");
    assert_eq!(decoded, bits);
}
