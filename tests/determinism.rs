//! Thread-count invariance: the parallel Monte-Carlo runners must produce
//! byte-identical results no matter how many worker threads execute them.
//! Trial `i` always draws from RNG stream `fork(i)`, and the worker pool
//! reassembles results in input order, so the outputs below must match
//! exactly — not approximately — across 1, 2 and 8 threads.

use ivn::core::experiment::{gain_vs_antennas_threads, peak_gain_cdf_threads};
use ivn::core::PAPER_OFFSETS_HZ;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn peak_gain_cdf_identical_across_thread_counts() {
    let reference = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 64, 512, 42, 1);
    assert_eq!(reference.len(), 64);
    for threads in THREAD_COUNTS {
        let cdf = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 64, 512, 42, threads);
        assert_eq!(cdf.len(), reference.len(), "{threads} threads");
        for (i, (a, b)) in cdf.samples().iter().zip(reference.samples()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sample {i} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn gain_vs_antennas_identical_across_thread_counts() {
    let reference = gain_vs_antennas_threads(6, 40, 7, 1);
    for threads in THREAD_COUNTS {
        let rows = gain_vs_antennas_threads(6, 40, 7, threads);
        assert_eq!(rows.len(), reference.len(), "{threads} threads");
        for (row, expect) in rows.iter().zip(&reference) {
            assert_eq!(row.n, expect.n);
            for (a, b) in [
                (row.gain.p10, expect.gain.p10),
                (row.gain.median, expect.gain.median),
                (row.gain.p90, expect.gain.p90),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "n={} differs at {threads} threads: {a} vs {b}",
                    row.n
                );
            }
        }
    }
}

#[test]
fn obs_instrumentation_never_perturbs_results() {
    // The observability layer must be a pure observer: running the same
    // experiment with tracing enabled yields byte-identical output at
    // every thread count. Compute the reference with obs off, then flip
    // the global flag on and re-run across the thread sweep.
    ivn_runtime::obs::set_enabled(false);
    let reference = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 48, 384, 7, 1);
    ivn_runtime::obs::set_enabled(true);
    for threads in THREAD_COUNTS {
        let cdf = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 48, 384, 7, threads);
        assert_eq!(cdf.len(), reference.len(), "{threads} threads");
        for (i, (a, b)) in cdf.samples().iter().zip(reference.samples()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "obs-on sample {i} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
    // And the instrumentation actually fired while enabled.
    let report = ivn_runtime::obs::report();
    assert!(
        report.counter("experiment.trials").unwrap_or(0) >= 48 * THREAD_COUNTS.len() as u64,
        "experiment.trials missing from report"
    );
    ivn_runtime::obs::set_enabled(false);
}

#[test]
fn trace_instrumentation_never_perturbs_results() {
    // Same guarantee as the obs test, for the timeline layer: recording
    // begin/end events and physics counter samples into the per-thread
    // rings must leave experiment outputs byte-identical at every thread
    // count.
    ivn_runtime::trace::set_enabled(false);
    let reference = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 48, 384, 11, 1);
    ivn_runtime::trace::set_enabled(true);
    for threads in THREAD_COUNTS {
        let cdf = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 48, 384, 11, threads);
        assert_eq!(cdf.len(), reference.len(), "{threads} threads");
        for (i, (a, b)) in cdf.samples().iter().zip(reference.samples()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "trace-on sample {i} differs at {threads} threads: {a} vs {b}"
            );
        }
    }
    ivn_runtime::trace::set_enabled(false);
    // And the timeline actually recorded while enabled: experiment spans
    // plus at least one physics counter track.
    let snap = ivn_runtime::trace::snapshot();
    assert!(
        snap.events
            .iter()
            .any(|e| e.name == "experiment.peak_gain_cdf_ns"),
        "experiment span missing from trace"
    );
    assert!(
        snap.events
            .iter()
            .any(|e| e.name == "physics.envelope_peak"),
        "physics probe missing from trace"
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Same seed, same thread count: the whole pipeline is a pure function
    // of the seed.
    let a = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 32, 256, 9, 4);
    let b = peak_gain_cdf_threads(&PAPER_OFFSETS_HZ[..5], 32, 256, 9, 4);
    assert_eq!(a, b);
}
