//! Quickstart: power up and read a battery-free sensor 10 cm deep in
//! fluid — the thing no single-antenna reader can do.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ivn::core::body::{Placement, TagSpec};
use ivn::core::system::{IvnSystem, SystemConfig};
use ivn_runtime::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xC1B);

    // The sensor: a standard battery-free UHF tag, 10 cm deep in a water
    // tank whose face is 90 cm from the antennas (the paper's Fig. 7 rig).
    let placement = Placement::water_tank(0.10);

    println!("IVN quickstart — sensor at 10 cm depth in fluid\n");

    // First, what a conventional single-antenna reader achieves:
    let single = IvnSystem::new(SystemConfig::paper_prototype(1, TagSpec::standard()));
    let outcome = single.run_session(&mut rng, &placement);
    println!(
        "single antenna : powered={}  (peak {:.1} µW at the tag — below the wake-up threshold)",
        outcome.powered,
        outcome.peak_power_w * 1e6
    );

    // Now the 8-antenna CIB beamformer — same per-antenna power budget,
    // no channel knowledge:
    let ivn = IvnSystem::new(SystemConfig::paper_prototype(8, TagSpec::standard()));
    let outcome = ivn.run_session(&mut rng, &placement);
    println!(
        "8-antenna CIB  : powered={}  command={}  RN16={}  (corr {:.2}, peak {:.1} µW)",
        outcome.powered,
        outcome.command_decoded,
        outcome.rn16_decoded,
        outcome.correlation,
        outcome.peak_power_w * 1e6
    );
    assert!(outcome.success(), "expected the CIB session to succeed");

    // How deep can it go? (paper: 23 cm for this tag at 8 antennas)
    let max_depth = ivn.max_depth_water(&mut rng, 0.5, 2);
    println!(
        "\nmaximum working depth with 8 antennas: {:.1} cm",
        max_depth * 100.0
    );
}
