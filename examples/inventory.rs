//! Population-scale inventory: 1000 battery-free tags on one body,
//! three anti-collision policies head to head — the PR-10 seam from the
//! scenario side. Declares a [`TagPopulation`] on a free-space
//! placement, prepares the experiment once (placements, inter-tag
//! coupling, cached frequency plan), then swaps the policy arm per run.
//!
//! ```sh
//! cargo run --release --example inventory
//! ```

use ivn::core::inventory::InventoryExperiment;
use ivn::core::scenario::{PlacementSpec, PolicySpec, Scenario, ScenarioKind, TagPopulation};
use ivn_runtime::rng::StdRng;

fn main() {
    // 1000 tags a millimetre apart, lightly detuning each other, on the
    // paper's 10-antenna array one metre out.
    let mut s = Scenario::base(
        "example-inventory",
        ScenarioKind::Inventory {
            population: TagPopulation {
                count: 1000,
                spacing_m: 0.001,
                detuning: 0.02,
                shadow_db: 0.01,
            },
            policy: PolicySpec::Adaptive { q0: 6, c: 0.3 },
            max_rounds: 2048,
            capture_db: 6.0,
            fade_db: 3.0,
        },
    );
    s.placement = PlacementSpec::FreeSpace { range_m: 1.0 };
    let exp = InventoryExperiment::prepare(&s, true).expect("scenario resolves");

    println!("Inventorying 1000 tags, capture threshold 6 dB\n");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>10}  {:>10}  {:>9}",
        "policy", "read", "rounds", "slots/tag", "collisions", "captures"
    );

    let policies = [
        PolicySpec::Adaptive { q0: 6, c: 0.3 },
        PolicySpec::Fixed { q: 10 },
        PolicySpec::Schoute { q0: 6 },
    ];
    let rng = StdRng::seed_from_u64(0x1209);
    for policy in policies {
        let run = exp.with_policy(policy.clone()).run_trial_nominal(&rng);
        println!(
            "{:>10}  {:>8}  {:>8}  {:>10.2}  {:>10}  {:>9}",
            policy.name(),
            format!("{}/{}", run.inventoried, run.powered),
            run.rounds,
            run.slots as f64 / run.inventoried.max(1) as f64,
            run.collisions,
            run.captures
        );
    }
    println!("\nSame prepared experiment, same RNG stream: the policy is the");
    println!("only moving part, so the rows are directly comparable.");
}
