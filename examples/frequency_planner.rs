//! Frequency planner: run the paper's Eq. 10 optimization for your own
//! antenna count and downlink timing, and verify the resulting plan's
//! envelope properties (peak recovery and command-window flatness).
//!
//! ```sh
//! cargo run --release --example frequency_planner -- [n_antennas] [command_us]
//! ```

use ivn::core::freqsel::{expected_peak, optimize, FreqSelConfig};
use ivn::core::waveform::{eq9_rms_bound, CibEnvelope};
use ivn_runtime::rng::{Rng, StdRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(8);
    let command_us: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(800.0);
    let alpha = 0.5;
    let rms_limit = eq9_rms_bound(alpha, command_us * 1e-6);

    println!("Planning a CIB frequency set for {n} antennas");
    println!("command duration {command_us:.0} µs, fluctuation budget α = {alpha}");
    println!("Eq. 9 RMS-offset bound: {rms_limit:.0} Hz\n");

    let cfg = FreqSelConfig {
        n_antennas: n,
        rms_limit_hz: rms_limit,
        max_offset_hz: (2.5 * rms_limit) as u32,
        mc_draws: 64,
        grid: 2048,
        restarts: 6,
        iterations: 150,
    };
    let plan = optimize(&cfg, 0xF0F0);
    println!("offsets: {:?} Hz", plan.offsets_hz);
    println!(
        "rms {:.1} Hz (≤ {:.0}); expected peak {:.2} of {n} → {:.0}× power gain\n",
        plan.rms_hz(),
        rms_limit,
        plan.expected_peak,
        plan.expected_power_gain()
    );

    // Verify on fresh random channels: peak recovery and flatness over
    // the command window at the peak.
    let mut rng = StdRng::seed_from_u64(99);
    let fresh = expected_peak(&plan.offsets_hz, 128, 2048, &mut rng);
    println!("validation on fresh channel draws: E[peak] = {fresh:.2}");
    let mut worst_flatness: f64 = 0.0;
    for _ in 0..50 {
        let phases: Vec<f64> = (0..n)
            .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
            .collect();
        let env = CibEnvelope::new(&plan.offsets_hz, &phases);
        let (t_peak, _) = env.peak_over_period(2048);
        let fl = env.fluctuation_around(t_peak + command_us * 0.5e-6, command_us * 1e-6, 128);
        worst_flatness = worst_flatness.max(fl);
    }
    println!(
        "worst command-window fluctuation across 50 draws: {worst_flatness:.2} (must be < {alpha} for reliable decode)"
    );
}
