//! Long-range RFID: the paper's "implications beyond miniature
//! implantables" (§1) — CIB powers off-the-shelf passive RFIDs at 38 m,
//! 7.6× their native range, with implications for inventory and
//! localization systems.
//!
//! ```sh
//! cargo run --release --example rfid_long_range
//! ```

use ivn::core::body::TagSpec;
use ivn::core::system::{IvnSystem, SystemConfig};
use ivn_runtime::rng::StdRng;

fn main() {
    println!("Line-of-sight range of an off-the-shelf passive RFID vs antennas\n");
    println!("{:>9}  {:>12}  {:>12}", "antennas", "range (m)", "gain");
    let mut base = 0.0;
    for n in 1..=8 {
        let sys = IvnSystem::new(SystemConfig::paper_prototype(n, TagSpec::standard()));
        let mut rng = StdRng::seed_from_u64(38 + n as u64);
        let r = sys.max_range_air(&mut rng, 0.5, 80.0, 2);
        if n == 1 {
            base = r;
        }
        println!("{n:>9}  {r:>12.1}  {:>11.1}×", r / base.max(1e-9));
    }
    println!("\npaper: 5.2 m with one antenna → 38 m with eight (7.6×).");
}
