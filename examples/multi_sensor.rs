//! Multi-sensor deployment: several battery-free sensors at different
//! depths, one CIB beamformer, Gen2 arbitration — the paper's §3.7
//! multi-sensor story, plus the adaptive frequency-hopping extension.
//!
//! ```sh
//! cargo run --release --example multi_sensor
//! ```

use ivn::core::body::{Placement, TagSpec};
use ivn::core::cib::CibConfig;
use ivn::core::hopping::{choose_center, ism_hop_set};
use ivn::core::multisensor::{run_campaign, SensorDeployment};
use ivn::em::channel::ChannelModel;
use ivn::em::multipath::MultipathChannel;
use ivn::rfid::epc::allocate_family;
use ivn_runtime::rng::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5E75);

    // A family of sensors sharing an EPC prefix: three in fluid at
    // increasing depth, one shallow, one absurdly deep (expected silent).
    let epcs = allocate_family(0xC0FFEE, 7, 5);
    let depths = [0.02, 0.06, 0.10, 0.14, 0.40];
    let sensors: Vec<SensorDeployment> = epcs
        .iter()
        .zip(depths)
        .map(|(epc, d)| SensorDeployment {
            epc: epc.encode(),
            spec: TagSpec::standard(),
            placement: Placement::water_tank(d),
        })
        .collect();

    let cib = CibConfig::paper_prototype_n(8);
    println!("Multi-sensor campaign: 5 sensors in fluid, 8-antenna CIB\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>12}",
        "depth (cm)", "serial", "powered", "inventoried"
    );
    let outcomes = run_campaign(&mut rng, &cib, 37.0, &sensors, 40);
    for (o, d) in outcomes.iter().zip(depths) {
        println!(
            "{:>10.0}  {:>10}  {:>10}  {:>12}",
            d * 100.0,
            o.epc & 0xFFFF,
            o.powered,
            o.inventoried
        );
    }

    // Frequency hopping: if the environment notches the 915 MHz band,
    // the beamformer probes the ISM band and camps on a clean centre.
    println!("\nAdaptive hopping demo — a multipath notch at 915 MHz:");
    let channels: Vec<Box<dyn ChannelModel + Send + Sync>> = (0..8)
        .map(|k| {
            let mut r = StdRng::seed_from_u64(0xB0B + k);
            Box::new(MultipathChannel::rayleigh(&mut r, 6, 40e-9, 1.0))
                as Box<dyn ChannelModel + Send + Sync>
        })
        .collect();
    let decision = choose_center(&cib, &channels, &ism_hop_set());
    println!(
        "hopped {} → {:.0} MHz, delivered power ×{:.1}",
        if decision.carrier_hz == cib.carrier_hz {
            "(stayed)"
        } else {
            "away"
        },
        decision.carrier_hz / 1e6,
        decision.improvement()
    );
}
