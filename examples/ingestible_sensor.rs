//! Ingestible-sensor scenario: a battery-free sensor inside a (simulated)
//! swine stomach, read from antennas half a metre outside the body —
//! the paper's §6.2 in-vivo campaign, runnable on a laptop.
//!
//! The example sweeps the antenna count and reports how reliably each
//! configuration establishes a session, reproducing the paper's finding
//! that the standard tag works in about half the gastric placements at
//! 8 antennas while the miniature tag needs a shallower (subcutaneous)
//! site.
//!
//! ```sh
//! cargo run --release --example ingestible_sensor
//! ```

use ivn::core::body::{Placement, TagSpec};
use ivn::core::system::{IvnSystem, SystemConfig};
use ivn_runtime::rng::StdRng;

fn success_rate(n_antennas: usize, tag: TagSpec, placement: &Placement, trials: usize) -> f64 {
    let sys = IvnSystem::new(SystemConfig::paper_prototype(n_antennas, tag));
    let mut rng = StdRng::seed_from_u64(2018 + n_antennas as u64);
    let ok = (0..trials)
        .filter(|_| sys.run_session(&mut rng, placement).success())
        .count();
    ok as f64 / trials as f64
}

fn main() {
    const TRIALS: usize = 12;
    let gastric = Placement::swine_gastric();
    let subcutaneous = Placement::swine_subcutaneous();

    println!("Deep-tissue sessions vs antenna count ({TRIALS} placements each)\n");
    println!(
        "{:>9}  {:>16}  {:>16}  {:>18}",
        "antennas", "gastric std", "gastric mini", "subcutaneous mini"
    );
    for n in [1, 2, 4, 6, 8, 10] {
        println!(
            "{:>9}  {:>15.0}%  {:>15.0}%  {:>17.0}%",
            n,
            100.0 * success_rate(n, TagSpec::standard(), &gastric, TRIALS),
            100.0 * success_rate(n, TagSpec::miniature(), &gastric, TRIALS),
            100.0 * success_rate(n, TagSpec::miniature(), &subcutaneous, TRIALS),
        );
    }
    println!("\npaper (§6.2, 8 antennas): gastric standard ≈ half the trials;");
    println!("gastric miniature: none; subcutaneous: all trials for both tags.");
}
