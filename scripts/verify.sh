#!/usr/bin/env sh
# Offline verification: build, test, format check, and the runtime-layer
# benchmark. Must pass from a clean checkout with an empty cargo registry —
# the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> golden vectors (protocol stack byte-for-byte)"
cargo test -q --offline -p ivn --test golden_vectors

echo "==> observability suites (unit + property)"
cargo test -q --offline -p ivn-runtime obs
cargo test -q --offline -p ivn-runtime --test obs_props

echo "==> timeline-trace suites (unit + ring-buffer edge cases + analyzer)"
cargo test -q --offline -p ivn-runtime trace
cargo test -q --offline -p ivn-runtime --test trace_props
cargo test -q --offline -p ivn-bench --lib trace_analysis

echo "==> trace round trip: reproduce --trace → in-tree JSON parse → balance check"
TRACE_OUT=target/verify_trace.json
cargo run --release --offline -p ivn-bench --bin reproduce -- pipeline --quick --trace "$TRACE_OUT" > /dev/null
# trace_report --check parses through the in-tree JSON layer, requires a
# non-empty traceEvents array, and verifies every B has a matching E.
cargo run --release --offline -p ivn-bench --bin trace_report -- "$TRACE_OUT" --check
for span in sdr.emit_ns em.ensemble_responses_ns harvester.power_up_ns rfid.pie_decode_ns freqsel.mc_eval_ns freqsel.kernel_batch_ns freqsel.kernel_fill physics.envelope_peak physics.harvested_charge_j; do
    grep -q "\"$span\"" "$TRACE_OUT" || {
        echo "verify: FAIL — '$span' missing from $TRACE_OUT" >&2
        exit 1
    }
done

echo "==> runtime bench with observability (BENCH_runtime.json)"
IVN_BENCH_FAST="${IVN_BENCH_FAST:-1}" cargo run --release --offline -p ivn-bench --bin bench_runtime -- --obs

echo "==> BENCH_runtime.json carries per-stage timings + obs report"
for stage in sdr em harvester rfid freqsel; do
    grep -q "\"$stage\"" BENCH_runtime.json || {
        echo "verify: FAIL — stage '$stage' missing from BENCH_runtime.json" >&2
        exit 1
    }
done
grep -q '"obs_report"' BENCH_runtime.json || {
    echo "verify: FAIL — obs_report missing from BENCH_runtime.json" >&2
    exit 1
}
grep -q 'harvester.power_up_ns' BENCH_runtime.json || {
    echo "verify: FAIL — span histogram missing from obs report" >&2
    exit 1
}
# The envelope-kernel spans must show up too: the batched Monte-Carlo
# eval from the freqsel stage and the incremental climb from the
# kernel/climb micro-bench.
for span in freqsel.kernel_batch_ns freqsel.kernel_incr_ns; do
    grep -q "$span" BENCH_runtime.json || {
        echo "verify: FAIL — kernel span '$span' missing from obs report" >&2
        exit 1
    }
done

echo "==> freqsel perf-regression gate (fast mode only)"
# Median stage/freqsel wall-clock committed with the envelope-kernel
# rewrite (seed 42, grid 1024, 16 draws, IVN_BENCH_FAST=1). A regression
# of more than 25% over this baseline fails verification. Full-mode runs
# (IVN_BENCH_FAST!=1) use 96 draws and skip the gate.
FREQSEL_BASELINE_NS=268000
if [ "${IVN_BENCH_FAST:-1}" = "1" ]; then
    freqsel_ns=$(sed -n 's/.*"stage":"freqsel","median_ns":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
    [ -n "$freqsel_ns" ] || {
        echo "verify: FAIL — stage/freqsel median_ns missing from BENCH_runtime.json" >&2
        exit 1
    }
    awk -v v="$freqsel_ns" -v base="$FREQSEL_BASELINE_NS" \
        'BEGIN { exit !(v <= base * 1.25) }' || {
        echo "verify: FAIL — stage/freqsel median ${freqsel_ns}ns regressed >25% over baseline ${FREQSEL_BASELINE_NS}ns" >&2
        exit 1
    }
    echo "stage/freqsel median ${freqsel_ns}ns (baseline ${FREQSEL_BASELINE_NS}ns, gate x1.25)"
else
    echo "skipped (full mode)"
fi

echo "==> instrumentation overhead: 95% CI upper bound under 4%"
# The old gate checked the min-of-mins point estimate, which is pure
# timer noise on a quiet run (it once reported -0.65%). The bench now
# interleaves (off, obs) pairs and reports a median with an
# order-statistic 95% CI; the gate holds the *upper* CI bound under 4%
# (typical quiet-run reading is ~1%; shared-runner noise pushes the CI
# bound up to ~3%), so it cannot pass on a lucky draw but survives a
# contended scheduler.
pct=$(sed -n 's/.*"obs_overhead_pct":\(-\{0,1\}[0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
hi=$(sed -n 's/.*"obs_overhead_ci95_pct":\[[^,]*,\(-\{0,1\}[0-9.eE+-]*\)\].*/\1/p' BENCH_runtime.json)
[ -n "$pct" ] && [ -n "$hi" ] || {
    echo "verify: FAIL — obs overhead median/CI missing from BENCH_runtime.json" >&2
    exit 1
}
awk -v v="$hi" 'BEGIN { exit !(v < 4.0) }' || {
    echo "verify: FAIL — obs overhead 95% CI upper bound ${hi}% is not < 4%" >&2
    exit 1
}
echo "obs_overhead_pct=$pct (95% CI upper bound ${hi}%)"

echo "==> sdr synthesis throughput: >= 20 MS/s streaming"
# The trig-free lane-batched rotator path. Baseline before the rewrite
# was 1.5 MS/s; the phasor-rotator + memoized-PA path holds >= 20 MS/s.
sdr_msps=$(sed -n 's/.*"stage":"sdr","msps":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[ -n "$sdr_msps" ] || {
    echo "verify: FAIL — streaming sdr msps missing from BENCH_runtime.json" >&2
    exit 1
}
awk -v v="$sdr_msps" 'BEGIN { exit !(v >= 20.0) }' || {
    echo "verify: FAIL — streaming sdr throughput ${sdr_msps} MS/s is below 20 MS/s" >&2
    exit 1
}
echo "streaming sdr throughput ${sdr_msps} MS/s (gate >= 20)"

echo "==> harvester + rfid streaming throughput (streaming-tail rebalance)"
# The α-hoisted integrator with the fused |rx|²·scale pass holds
# ~110 MS/s and the run-length PIE/FM0 decoders ~230 MS/s on a quiet
# 1-core runner (was ~26 / ~25 before the rewrite). Gates sit well
# below the committed readings so scheduler noise cannot trip them, but
# far above the pre-rewrite rates; the committed BENCH_baseline.json
# bands pin the tighter regression envelope.
harv_msps=$(sed -n 's/.*"stage":"harvester","msps":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
rfid_msps=$(sed -n 's/.*"stage":"rfid","msps":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[ -n "$harv_msps" ] && [ -n "$rfid_msps" ] || {
    echo "verify: FAIL — streaming harvester/rfid msps missing from BENCH_runtime.json" >&2
    exit 1
}
awk -v v="$harv_msps" 'BEGIN { exit !(v >= 60.0) }' || {
    echo "verify: FAIL — streaming harvester throughput ${harv_msps} MS/s is below 60 MS/s" >&2
    exit 1
}
awk -v v="$rfid_msps" 'BEGIN { exit !(v >= 100.0) }' || {
    echo "verify: FAIL — streaming rfid throughput ${rfid_msps} MS/s is below 100 MS/s" >&2
    exit 1
}
echo "streaming harvester ${harv_msps} MS/s (gate >= 60), rfid ${rfid_msps} MS/s (gate >= 100)"

echo "==> worker pool: 8-way dispatch amortization >= 4x"
# Pooled dispatch of 8-chunk batches vs spawn-per-call threads on the
# identical workload. This measures what the pool refactor fixes —
# per-dispatch cost — and holds on any core count.
pool_x=$(sed -n 's/.*"dispatch_speedup_x8":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[ -n "$pool_x" ] || {
    echo "verify: FAIL — pool dispatch_speedup_x8 missing from BENCH_runtime.json" >&2
    exit 1
}
awk -v v="$pool_x" 'BEGIN { exit !(v >= 4.0) }' || {
    echo "verify: FAIL — pool dispatch speedup ${pool_x}x is below 4x" >&2
    exit 1
}
echo "pool dispatch speedup ${pool_x}x over spawn-per-call (gate >= 4)"

echo "==> 8-thread parallel_sweep wall-clock speedup (gated when cores >= 8)"
# On boxes with fewer cores than the sweep width the bench records
# {"threads":8,"skipped_oversubscribed":true} instead of timing pure
# contention; either a passing speedup or an explicit skip is required —
# a silently missing entry fails.
cores=$(sed -n 's/.*"cores":\([0-9]*\).*/\1/p' BENCH_runtime.json | head -n 1)
[ -n "$cores" ] || {
    echo "verify: FAIL — cores missing from BENCH_runtime.json" >&2
    exit 1
}
if [ "$cores" -ge 8 ]; then
    sweep_x=$(sed -n 's/.*"threads":8,"median_ns":[0-9.eE+-]*,"speedup":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
    [ -n "$sweep_x" ] || {
        echo "verify: FAIL — 8-thread sweep speedup missing from BENCH_runtime.json" >&2
        exit 1
    }
    awk -v v="$sweep_x" 'BEGIN { exit !(v >= 4.0) }' || {
        echo "verify: FAIL — 8-thread parallel_sweep speedup ${sweep_x}x is below 4x on ${cores} cores" >&2
        exit 1
    }
    echo "8-thread parallel_sweep speedup ${sweep_x}x on ${cores} cores (gate >= 4)"
else
    grep -q '"threads":8,"skipped_oversubscribed":true' BENCH_runtime.json || {
        echo "verify: FAIL — 8-thread sweep entry neither timed nor marked skipped on ${cores} core(s)" >&2
        exit 1
    }
    echo "8-thread sweep marked skipped_oversubscribed on ${cores} core(s) — wall-clock gate requires >= 8 cores"
fi

echo "==> rotor / pool / streaming-equivalence suites"
cargo test -q --offline -p ivn-dsp --test rotor_props
cargo test -q --offline -p ivn-runtime --test pool_props
cargo test -q --offline -p ivn --test streaming_equivalence

echo "==> streaming pipeline: bit-identical to whole-buffer batch path"
STREAM_OUT=target/verify_stream.txt
BATCH_OUT=target/verify_batch.txt
cargo run --release --offline -p ivn-bench --bin reproduce -- pipeline --quick --stream-stats > "$STREAM_OUT"
cargo run --release --offline -p ivn-bench --bin reproduce -- pipeline --quick --batch --stream-stats > "$BATCH_OUT"
stream_hash=$(sed -n 's/.*rx_hash=\([0-9a-f]*\).*/\1/p' "$STREAM_OUT")
batch_hash=$(sed -n 's/.*rx_hash=\([0-9a-f]*\).*/\1/p' "$BATCH_OUT")
[ -n "$stream_hash" ] && [ -n "$batch_hash" ] || {
    echo "verify: FAIL — rx_hash missing from pipeline output" >&2
    exit 1
}
[ "$stream_hash" = "$batch_hash" ] || {
    echo "verify: FAIL — streaming rx_hash $stream_hash != batch rx_hash $batch_hash" >&2
    exit 1
}
echo "rx_hash=$stream_hash (streaming == batch)"

echo "==> streaming pipeline: full 1 MS/s period with bounded per-stage memory"
MSPS_OUT=target/verify_stream_1msps.txt
cargo run --release --offline -p ivn-bench --bin reproduce -- pipeline --quick --sample-rate 1e6 --stream-stats > "$MSPS_OUT"
grep -q 'powered=true' "$MSPS_OUT" || {
    echo "verify: FAIL — 1 MS/s streaming run did not power the tag" >&2
    exit 1
}
footprint=$(sed -n 's/^stream *footprint \(.*\) samples.*/\1/p' "$MSPS_OUT")
[ -n "$footprint" ] || {
    echo "verify: FAIL — footprint line missing from 1 MS/s run" >&2
    exit 1
}
block=$(sed -n 's/.*block=\([0-9]*\).*/\1/p' "$MSPS_OUT")
for kv in $footprint; do
    stage=${kv%%=*}
    peak=${kv#*=}
    awk -v v="$peak" -v b="$block" 'BEGIN { exit !(v <= 2 * b) }' || {
        echo "verify: FAIL — stage '$stage' peak footprint ${peak} samples exceeds 2x block (${block})" >&2
        exit 1
    }
done
echo "per-stage peak footprint [$footprint] all within 2x block=$block at 1 MS/s"

echo "==> BENCH_runtime.json records streaming stage throughput"
grep -q '"streaming"' BENCH_runtime.json && grep -q '"msps"' BENCH_runtime.json || {
    echo "verify: FAIL — streaming throughput missing from BENCH_runtime.json" >&2
    exit 1
}

echo "==> scenario export: byte-identical JSON round-trip"
SCN_DIR=target/verify_scenarios
mkdir -p "$SCN_DIR"
for name in fig6 fig9 fig13 invivo session multisensor; do
    cargo run --release --offline -p ivn-bench --bin reproduce -- export "$name" --out "$SCN_DIR/$name.json" 2> /dev/null
    cargo run --release --offline -p ivn-bench --bin reproduce -- --scenario "$SCN_DIR/$name.json" --quick > /dev/null
done
# export → run through a file → re-export must not change a byte; the
# scenario_golden suite pins parse→dump stability, this pins the CLI path.
cargo run --release --offline -p ivn-bench --bin reproduce -- export session --out "$SCN_DIR/session2.json" 2> /dev/null
cmp "$SCN_DIR/session.json" "$SCN_DIR/session2.json" || {
    echo "verify: FAIL — scenario export is not byte-stable" >&2
    exit 1
}
echo "scenario export round-trip OK"

echo "==> built-in scenarios reproduce the legacy figure bytes"
# Cheap targets only here (the full 13-target pin runs in scenario_golden):
# the registry path through `reproduce <target>` must match the golden files.
for target in fig2 fig4 fig9 fig11 invivo; do
    cargo run --release --offline -p ivn-bench --bin reproduce -- "$target" --quick > "target/verify_$target.txt"
    cmp "target/verify_$target.txt" "tests/golden/figures/$target.quick.txt" || {
        echo "verify: FAIL — reproduce $target --quick diverged from tests/golden/figures/$target.quick.txt" >&2
        exit 1
    }
done
echo "figure bytes match golden files"

echo "==> 25-scenario generated campaign smoke run"
FLEET_DIR=target/verify_fleet
rm -rf "$FLEET_DIR"
cargo run --release --offline -p ivn-bench --bin reproduce -- generate --out "$FLEET_DIR" --base session --count 25 --seed 7 \
    --sweep placement.depth_m=0.02,0.05,0.08 --jitter eirp_dbm=0.05
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$FLEET_DIR" --quick --threads 2 --out target/verify_campaign.json
grep -q '"evaluated":25' target/verify_campaign.json || {
    echo "verify: FAIL — campaign report did not evaluate all 25 scenarios" >&2
    exit 1
}
grep -q '"errors":0' target/verify_campaign.json || {
    echo "verify: FAIL — campaign reported scenario errors" >&2
    exit 1
}
echo "campaign smoke run OK (25 scenarios)"

echo "==> BENCH_runtime.json records campaign throughput"
grep -q '"campaign"' BENCH_runtime.json && grep -q '"scenarios_per_sec"' BENCH_runtime.json || {
    echo "verify: FAIL — campaign throughput missing from BENCH_runtime.json" >&2
    exit 1
}

echo "==> population-scale inventory: >= 1M tag-sessions, per-policy stats, pool-width invariant"
# bench_runtime's inventory section asserts a 64-body probe bit-identical
# at 1/2/8 workers before writing the JSON; the gates here re-check the
# recorded artifact: all three policy arms present with throughput and
# rounds-to-full numbers, and at least a million tag-sessions total.
grep -q '"inventory"' BENCH_runtime.json && grep -q '"tag_sessions_per_sec"' BENCH_runtime.json || {
    echo "verify: FAIL — inventory section missing from BENCH_runtime.json" >&2
    exit 1
}
inv_total=$(sed -n 's/.*"total_tag_sessions":\([0-9]*\).*/\1/p' BENCH_runtime.json)
[ -n "$inv_total" ] || {
    echo "verify: FAIL — total_tag_sessions missing from BENCH_runtime.json" >&2
    exit 1
}
[ "$inv_total" -ge 1000000 ] || {
    echo "verify: FAIL — inventory fleet ran only ${inv_total} tag-sessions (gate >= 1000000)" >&2
    exit 1
}
grep -q '"thread_invariant":true' BENCH_runtime.json || {
    echo "verify: FAIL — inventory fleet thread-invariance flag missing" >&2
    exit 1
}
for pol in adaptive fixed schoute; do
    grep -q "\"policy\":\"$pol\"" BENCH_runtime.json || {
        echo "verify: FAIL — inventory policy arm '$pol' missing from BENCH_runtime.json" >&2
        exit 1
    }
done
grep -q '"rounds_to_full_median"' BENCH_runtime.json || {
    echo "verify: FAIL — rounds_to_full_median missing from inventory section" >&2
    exit 1
}
echo "inventory fleet ${inv_total} tag-sessions across 3 policies (gate >= 1M, pool-width invariant)"

echo "==> 64-tag inventory campaign: byte-identical at 1/2/8 threads"
INV_DIR=target/verify_inventory_fleet
rm -rf "$INV_DIR"
cargo run --release --offline -p ivn-bench --bin reproduce -- generate --out "$INV_DIR" --base inventory --count 6 --seed 11 \
    --sweep eirp_dbm=36,37,38 > /dev/null
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$INV_DIR" --quick --threads 1 --out target/verify_inventory_t1.json
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$INV_DIR" --quick --threads 2 --out target/verify_inventory_t2.json
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$INV_DIR" --quick --threads 8 --out target/verify_inventory_t8.json
grep -q '"evaluated":6' target/verify_inventory_t1.json || {
    echo "verify: FAIL — inventory campaign did not evaluate all 6 scenarios" >&2
    exit 1
}
grep -q '"errors":0' target/verify_inventory_t1.json || {
    echo "verify: FAIL — inventory campaign reported scenario errors" >&2
    exit 1
}
cmp target/verify_inventory_t1.json target/verify_inventory_t2.json || {
    echo "verify: FAIL — inventory campaign diverged between 1 and 2 threads" >&2
    exit 1
}
cmp target/verify_inventory_t1.json target/verify_inventory_t8.json || {
    echo "verify: FAIL — inventory campaign diverged between 1 and 8 threads" >&2
    exit 1
}
echo "inventory campaign OK (6 x 64-tag scenarios, byte-identical at 1/2/8 threads)"

echo "==> plan-cache campaign: >= 3x on a plan-sharing fleet, hits byte-identical to cold"
# bench_runtime's campaign_planshare section runs the same fleet cold
# (cache disabled, every scenario pays the Eq. 10 search) and warm
# (cache enabled from empty) and asserts the two reports byte-identical
# before it will write the JSON at all; the gate here re-checks the
# recorded speedup and the byte_identical flag from the artifact.
plan_x=$(sed -n 's/.*"campaign_planshare":{[^}]*"speedup":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[ -n "$plan_x" ] || {
    echo "verify: FAIL — campaign_planshare speedup missing from BENCH_runtime.json" >&2
    exit 1
}
awk -v v="$plan_x" 'BEGIN { exit !(v >= 3.0) }' || {
    echo "verify: FAIL — plan-cache campaign speedup ${plan_x}x is below 3x" >&2
    exit 1
}
grep -q '"campaign_planshare":{[^}]*"byte_identical":true' BENCH_runtime.json || {
    echo "verify: FAIL — plan-cache warm campaign is not byte-identical to cold" >&2
    exit 1
}
echo "plan-cache campaign speedup ${plan_x}x (gate >= 3), warm report byte-identical"

echo "==> telemetry + sentinel suites (flight recorder, delta/merge, tolerance bands)"
cargo test -q --offline -p ivn-runtime telemetry
cargo test -q --offline -p ivn-bench --lib sentinel

echo "==> BENCH_runtime.json carries per-worker pool observatory metrics"
for key in pool_workers steals steal_misses busy_frac queue_depth_peak; do
    grep -q "\"$key\"" BENCH_runtime.json || {
        echo "verify: FAIL — pool observatory key '$key' missing from BENCH_runtime.json" >&2
        exit 1
    }
done
echo "pool observatory metrics present"

echo "==> flight recorder: live campaign telemetry is valid NDJSON"
LIVE_FLEET=target/verify_live_fleet
LIVE_OUT=target/verify_live.ndjson
rm -rf "$LIVE_FLEET"
cargo run --release --offline -p ivn-bench --bin reproduce -- generate --out "$LIVE_FLEET" --base session --count 64 --seed 7 \
    --sweep placement.depth_m=0.02,0.05,0.08,0.11 --jitter eirp_dbm=0.05 > /dev/null
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$LIVE_FLEET" --quick \
    --live "$LIVE_OUT" --live-interval-ms 2 > target/verify_live_on.txt 2> /dev/null
# validate_ndjson checks parseable lines, gapless seq from 0, monotone
# elapsed time; the gate also requires >= 3 snapshots so a recorder that
# started and immediately died cannot pass.
cargo run --release --offline -p ivn-bench --bin bench_runtime -- --check-ndjson "$LIVE_OUT"
grep -q '"rates"' "$LIVE_OUT" || {
    echo "verify: FAIL — no rates in $LIVE_OUT snapshots" >&2
    exit 1
}
grep -q 'campaign.scenarios_done' "$LIVE_OUT" || {
    echo "verify: FAIL — campaign progress counter missing from $LIVE_OUT" >&2
    exit 1
}
# --live must never change the campaign's answer: stdout byte-identical
# to a run with telemetry off.
cargo run --release --offline -p ivn-bench --bin reproduce -- campaign "$LIVE_FLEET" --quick > target/verify_live_off.txt 2> /dev/null
cmp target/verify_live_on.txt target/verify_live_off.txt || {
    echo "verify: FAIL — campaign stdout differs with --live enabled" >&2
    exit 1
}
echo "live telemetry OK ($(wc -l < "$LIVE_OUT") snapshots, stdout byte-identical)"

echo "==> bottleneck attribution from the verify trace"
cargo run --release --offline -p ivn-bench --bin trace_report -- "$TRACE_OUT" --attribute --bench BENCH_runtime.json > target/verify_attr.txt
grep -q 'bottleneck attribution' target/verify_attr.txt && grep -q 'stage ranking' target/verify_attr.txt || {
    echo "verify: FAIL — trace_report --attribute did not produce an attribution report" >&2
    exit 1
}
echo "attribution report OK"

echo "==> perf-regression sentinel: BENCH_runtime.json vs committed baseline"
# Band-by-band tolerance check against BENCH_baseline.json; skips itself
# (exit 0 with a notice) when the bench ran in a different mode than the
# baseline was recorded under.
cargo run --release --offline -p ivn-bench --bin bench_runtime -- --check-baseline

echo "verify: OK"
