#!/usr/bin/env sh
# Offline verification: build, test, format check, and the runtime-layer
# benchmark. Must pass from a clean checkout with an empty cargo registry —
# the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> runtime bench (BENCH_runtime.json)"
IVN_BENCH_FAST="${IVN_BENCH_FAST:-1}" cargo run --release --offline -p ivn-bench --bin bench_runtime

echo "verify: OK"
