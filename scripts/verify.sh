#!/usr/bin/env sh
# Offline verification: build, test, format check, and the runtime-layer
# benchmark. Must pass from a clean checkout with an empty cargo registry —
# the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> golden vectors (protocol stack byte-for-byte)"
cargo test -q --offline -p ivn --test golden_vectors

echo "==> observability suites (unit + property)"
cargo test -q --offline -p ivn-runtime obs
cargo test -q --offline -p ivn-runtime --test obs_props

echo "==> runtime bench with observability (BENCH_runtime.json)"
IVN_BENCH_FAST="${IVN_BENCH_FAST:-1}" cargo run --release --offline -p ivn-bench --bin bench_runtime -- --obs

echo "==> BENCH_runtime.json carries per-stage timings + obs report"
for stage in sdr em harvester rfid freqsel; do
    grep -q "\"$stage\"" BENCH_runtime.json || {
        echo "verify: FAIL — stage '$stage' missing from BENCH_runtime.json" >&2
        exit 1
    }
done
grep -q '"obs_report"' BENCH_runtime.json || {
    echo "verify: FAIL — obs_report missing from BENCH_runtime.json" >&2
    exit 1
}
grep -q 'harvester.power_up_ns' BENCH_runtime.json || {
    echo "verify: FAIL — span histogram missing from obs report" >&2
    exit 1
}

echo "verify: OK"
